"""Tests for the effective-resistance engines against closed forms."""

import numpy as np
import pytest

from repro.core.effective_resistance import (
    CholInvEffectiveResistance,
    ExactEffectiveResistance,
    dense_pinv_resistance,
    effective_resistances,
    spanning_edge_centrality,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    fe_mesh_2d,
    grid_2d,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph


class TestClosedForms:
    """Textbook effective resistances on canonical graphs."""

    def test_path(self):
        est = ExactEffectiveResistance(path_graph(6))
        for i in range(6):
            for j in range(6):
                assert np.isclose(est.query(i, j), abs(i - j), atol=1e-9)

    def test_weighted_path(self):
        est = ExactEffectiveResistance(path_graph(4, weight=2.0))
        assert np.isclose(est.query(0, 3), 1.5)  # three 0.5-ohm resistors

    def test_cycle(self):
        n = 8
        est = ExactEffectiveResistance(cycle_graph(n))
        for d in range(1, n):
            expected = d * (n - d) / n
            assert np.isclose(est.query(0, d), expected, atol=1e-9)

    def test_star(self):
        est = ExactEffectiveResistance(star_graph(7))
        assert np.isclose(est.query(0, 3), 1.0)
        assert np.isclose(est.query(2, 5), 2.0)

    def test_complete(self):
        n = 9
        est = ExactEffectiveResistance(complete_graph(n))
        assert np.isclose(est.query(1, 7), 2.0 / n)

    def test_parallel_edges(self):
        g = Graph.from_edges(2, [(0, 1, 1.0), (0, 1, 1.0)])
        est = ExactEffectiveResistance(g)
        assert np.isclose(est.query(0, 1), 0.5)


class TestExactEngine:
    def test_matches_dense_pinv(self, weighted_mesh):
        est = ExactEffectiveResistance(weighted_mesh)
        pairs = weighted_mesh.edge_array()[::5]
        assert np.allclose(
            est.query_pairs(pairs), dense_pinv_resistance(weighted_mesh, pairs),
            rtol=1e-8,
        )

    def test_ground_value_irrelevant(self, weighted_mesh):
        pairs = weighted_mesh.edge_array()[:10]
        a = ExactEffectiveResistance(weighted_mesh, ground_value=0.1).query_pairs(pairs)
        b = ExactEffectiveResistance(weighted_mesh, ground_value=10.0).query_pairs(pairs)
        assert np.allclose(a, b, rtol=1e-8)

    def test_cross_component_is_inf(self, two_components):
        est = ExactEffectiveResistance(two_components)
        assert est.query(0, 4) == np.inf
        assert np.isclose(est.query(0, 1), 2.0 / 3.0)

    def test_same_node_is_zero(self, small_grid):
        est = ExactEffectiveResistance(small_grid)
        assert est.query(5, 5) == 0.0

    def test_symmetry(self, weighted_mesh):
        est = ExactEffectiveResistance(weighted_mesh)
        assert np.isclose(est.query(0, 17), est.query(17, 0))

    def test_triangle_inequality(self, weighted_mesh):
        """Effective resistance is a metric."""
        est = ExactEffectiveResistance(weighted_mesh)
        rng = np.random.default_rng(0)
        n = weighted_mesh.num_nodes
        for _ in range(25):
            a, b, c = rng.choice(n, size=3, replace=False)
            rab, rbc, rac = est.query(a, b), est.query(b, c), est.query(a, c)
            assert rac <= rab + rbc + 1e-9

    def test_all_edge_resistances_shape(self, small_grid):
        est = ExactEffectiveResistance(small_grid)
        r = est.all_edge_resistances()
        assert r.shape == (small_grid.num_edges,)
        assert np.all(r > 0)

    def test_rayleigh_monotonicity(self):
        """Adding an edge can only lower effective resistances."""
        sparse = path_graph(5)
        denser = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        r_sparse = ExactEffectiveResistance(sparse).query(0, 4)
        r_dense = ExactEffectiveResistance(denser).query(0, 4)
        assert r_dense < r_sparse


class TestCholInvEngine:
    def test_close_to_exact_paper_settings(self, weighted_mesh):
        exact = ExactEffectiveResistance(weighted_mesh)
        approx = CholInvEffectiveResistance(
            weighted_mesh, epsilon=1e-3, drop_tol=1e-3, ordering="amd"
        )
        pairs = weighted_mesh.edge_array()
        truth = exact.query_pairs(pairs)
        estimate = approx.query_pairs(pairs)
        rel = np.abs(estimate - truth) / truth
        assert rel.mean() < 5e-3
        assert rel.max() < 5e-2

    def test_exact_settings_are_exact(self, weighted_mesh):
        approx = CholInvEffectiveResistance(
            weighted_mesh, epsilon=0.0, drop_tol=0.0, ordering="amd"
        )
        exact = ExactEffectiveResistance(weighted_mesh)
        pairs = weighted_mesh.edge_array()[:25]
        assert np.allclose(
            approx.query_pairs(pairs), exact.query_pairs(pairs), rtol=1e-8
        )

    def test_error_decreases_with_epsilon(self):
        graph = fe_mesh_2d(9, 9, seed=3)
        exact = ExactEffectiveResistance(graph)
        pairs = graph.edge_array()
        truth = exact.query_pairs(pairs)
        errors = []
        for eps in (1e-1, 1e-2, 1e-3):
            est = CholInvEffectiveResistance(graph, epsilon=eps, drop_tol=0.0)
            rel = np.abs(est.query_pairs(pairs) - truth) / truth
            errors.append(rel.mean())
        assert errors[0] > errors[1] > errors[2]

    def test_cross_component_inf(self, two_components):
        est = CholInvEffectiveResistance(two_components)
        assert est.query(1, 5) == np.inf

    def test_same_node_zero(self, small_grid):
        est = CholInvEffectiveResistance(small_grid)
        assert est.query(3, 3) == 0.0

    def test_nonnegative_results(self, weighted_mesh):
        est = CholInvEffectiveResistance(weighted_mesh, epsilon=1e-1, drop_tol=1e-2)
        assert np.all(est.all_edge_resistances() >= 0.0)

    def test_orderings_agree(self, weighted_mesh):
        pairs = weighted_mesh.edge_array()[:15]
        results = []
        for ordering in ("natural", "rcm", "amd"):
            est = CholInvEffectiveResistance(
                weighted_mesh, epsilon=1e-4, drop_tol=0.0, ordering=ordering
            )
            results.append(est.query_pairs(pairs))
        assert np.allclose(results[0], results[1], rtol=1e-2)
        assert np.allclose(results[0], results[2], rtol=1e-2)

    def test_depth_and_stats_exposed(self, weighted_mesh):
        est = CholInvEffectiveResistance(weighted_mesh)
        assert est.max_depth >= 1
        assert est.depths.shape == (weighted_mesh.num_nodes,)
        assert est.stats.nnz == est.z_tilde.nnz
        assert set(est.timer.times) >= {"factorize", "approx_inverse"}

    def test_single_pair_list_form(self, small_grid):
        est = CholInvEffectiveResistance(small_grid)
        r = est.query_pairs((0, 1))
        assert r.shape == (1,)


class TestDispatcher:
    def test_default_pairs_are_edges(self, small_grid):
        r = effective_resistances(small_grid, method="exact")
        assert r.shape == (small_grid.num_edges,)

    def test_methods_agree(self, small_grid):
        pairs = small_grid.edge_array()[:10]
        exact = effective_resistances(small_grid, pairs, method="exact")
        cholinv = effective_resistances(
            small_grid, pairs, method="cholinv", epsilon=0.0, drop_tol=0.0
        )
        assert np.allclose(exact, cholinv, rtol=1e-8)

    def test_random_projection_dispatch(self, small_grid):
        pairs = small_grid.edge_array()[:5]
        r = effective_resistances(
            small_grid,
            pairs,
            method="random_projection",
            num_projections=2000,
            solver="splu",
            seed=0,
        )
        exact = effective_resistances(small_grid, pairs, method="exact")
        assert np.allclose(r, exact, rtol=0.25)

    def test_unknown_method(self, small_grid):
        with pytest.raises(ValueError, match="unknown method"):
            effective_resistances(small_grid, method="bogus")


class TestSpanningEdgeCentrality:
    def test_sums_to_n_minus_one(self, weighted_mesh):
        """Σ_e w(e)R(e) = n - 1 on a connected graph (matrix-tree identity)."""
        centrality = spanning_edge_centrality(weighted_mesh, method="exact")
        assert np.isclose(centrality.sum(), weighted_mesh.num_nodes - 1, rtol=1e-8)

    def test_tree_edges_have_centrality_one(self):
        centrality = spanning_edge_centrality(path_graph(6), method="exact")
        assert np.allclose(centrality, 1.0)

    def test_bounded_by_one(self, small_grid):
        centrality = spanning_edge_centrality(small_grid, method="exact")
        assert np.all(centrality <= 1.0 + 1e-9)
        assert np.all(centrality > 0.0)
