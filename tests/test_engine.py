"""Engine protocol, registry, sharding and persistence tests.

The conformance suite runs the same structural checks over *every*
registered engine (plus sharded composites): engines added later inherit
the whole battery by registering and adding one config below.
"""

import numpy as np
import pytest

from repro.core.effective_resistance import (
    CholInvEffectiveResistance,
    ExactEffectiveResistance,
    effective_resistances,
)
from repro.core.engine import (
    EngineConfig,
    ResistanceEngine,
    as_pair_array,
    build_engine,
    config_from_kwargs,
    registered_engines,
)
from repro.core.persistence import load_engine, save_engine
from repro.core.sharded import ShardedEngine
from repro.graphs.generators import fe_mesh_2d
from repro.graphs.graph import Graph
from repro.service import ResistanceService

# Conformance configurations: one per registered engine, plus sharded
# composites.  random_projection gets enough projections to keep its
# structural answers stable on tiny graphs; the estimator tiers get seeds
# (determinism) and sample counts sized for the tiny fixture.
CONFIGS = {
    "cholinv": EngineConfig(),
    "exact": EngineConfig(method="exact"),
    "naive": EngineConfig(method="naive"),
    "random_projection": EngineConfig(
        method="random_projection", num_projections=64, solver="splu", seed=0
    ),
    "spanning_tree": EngineConfig(method="spanning_tree", num_trees=300, seed=0),
    "landmark": EngineConfig(method="landmark", num_landmarks=4, seed=0),
    "local_walk": EngineConfig(
        method="local_walk", num_walks=256, walk_length=32, seed=0
    ),
    "adaptive": EngineConfig(method="adaptive", num_landmarks=4, seed=0),
    "sharded-cholinv": EngineConfig(sharded=True),
    "sharded-exact": EngineConfig(method="exact", sharded=True, lazy_shards=True),
}


@pytest.fixture
def multi_component() -> Graph:
    """Three triangles + a trailing isolated node (4 components, 10 nodes)."""
    edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3),
             (6, 7), (7, 8), (8, 6)]
    return Graph.from_edges(10, edges)


def test_every_registered_engine_has_a_conformance_config():
    covered = {cfg.method for cfg in CONFIGS.values()}
    assert set(registered_engines()) == covered


@pytest.fixture(params=sorted(CONFIGS), name="engine")
def engine_fixture(request, multi_component) -> ResistanceEngine:
    return build_engine(multi_component, CONFIGS[request.param])


class TestProtocolConformance:
    def test_protocol_surface(self, engine, multi_component):
        assert isinstance(engine, ResistanceEngine)
        assert engine.n == multi_component.num_nodes
        assert engine.component_labels.shape == (multi_component.num_nodes,)
        assert hasattr(engine.timer, "section")
        assert engine.graph is multi_component
        assert engine.config is not None

    def test_empty_batch(self, engine):
        out = engine.query_pairs([])
        assert out.shape == (0,)
        assert out.dtype == np.float64
        assert engine.query_pairs(np.empty((0, 2), dtype=np.int64)).shape == (0,)

    def test_query_symmetry(self, engine):
        assert engine.query(0, 2) == pytest.approx(engine.query(2, 0))

    def test_zero_diagonal(self, engine):
        assert np.array_equal(engine.query_pairs([(1, 1), (9, 9)]), [0.0, 0.0])

    def test_inf_across_components(self, engine):
        values = engine.query_pairs([(0, 3), (2, 6), (0, 9)])
        assert np.all(np.isinf(values))

    def test_scalar_query_matches_batch(self, engine):
        assert engine.query(0, 1) == pytest.approx(
            float(engine.query_pairs([(0, 1)])[0])
        )

    def test_all_edge_resistances(self, engine, multi_component):
        values = engine.all_edge_resistances()
        assert values.shape == (multi_component.num_edges,)
        assert np.all(np.isfinite(values)) and np.all(values > 0)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"cholinv", "exact", "random_projection", "naive"} <= set(
            registered_engines()
        )

    def test_build_engine_returns_registered_classes(self, multi_component):
        assert isinstance(build_engine(multi_component, "exact"),
                          ExactEffectiveResistance)
        assert isinstance(
            build_engine(multi_component, EngineConfig(sharded=True)),
            ShardedEngine,
        )

    def test_unknown_method_raises(self, multi_component):
        with pytest.raises(ValueError, match="unknown method"):
            build_engine(multi_component, EngineConfig(method="bogus"))

    def test_unknown_kwarg_raises(self):
        with pytest.raises(ValueError, match="unknown engine parameter"):
            config_from_kwargs("cholinv", dropp_tol=1e-3)

    def test_config_plus_kwargs_rejected(self, multi_component):
        with pytest.raises(ValueError):
            build_engine(multi_component, EngineConfig(), epsilon=1e-2)

    def test_config_plus_conflicting_method_rejected(self, multi_component):
        with pytest.raises(ValueError, match="conflicts"):
            effective_resistances(
                multi_component, [(0, 1)], method="exact", config=EngineConfig()
            )
        with pytest.raises(ValueError, match="conflicts"):
            ResistanceService(
                multi_component, method="naive", config=EngineConfig(method="exact")
            )
        # a matching method is fine
        ResistanceService(
            multi_component, method="exact", config=EngineConfig(method="exact")
        )

    def test_legacy_dispatcher_signatures_still_work(self, multi_component):
        a = effective_resistances(multi_component, [(0, 1)], method="exact")
        b = effective_resistances(
            multi_component, [(0, 1)], method="cholinv", epsilon=0.0, drop_tol=0.0
        )
        c = effective_resistances(
            multi_component, [(0, 1)], config=EngineConfig(method="exact")
        )
        assert a == pytest.approx(b) and a == pytest.approx(c)

    def test_config_round_trips_through_dict(self):
        config = EngineConfig(method="exact", epsilon=0.5, sharded=True)
        assert EngineConfig.from_dict(config.to_dict()) == config
        # unknown keys (newer versions) are ignored
        assert EngineConfig.from_dict({"method": "exact", "future_knob": 1})

    def test_as_pair_array_shapes(self):
        assert as_pair_array([]).shape == (0, 2)
        assert as_pair_array((3, 4)).shape == (1, 2)
        with pytest.raises(ValueError, match="pairs must be"):
            as_pair_array(np.zeros((2, 3)))


class TestShardedEngine:
    def test_matches_unsharded_exact(self, multi_component):
        rng = np.random.default_rng(0)
        pairs = np.column_stack([rng.integers(0, 10, 200), rng.integers(0, 10, 200)])
        whole = build_engine(multi_component, EngineConfig(method="exact"))
        sharded = build_engine(
            multi_component, EngineConfig(method="exact", sharded=True)
        )
        a, b = whole.query_pairs(pairs), sharded.query_pairs(pairs)
        finite = np.isfinite(a)
        assert np.array_equal(finite, np.isfinite(b))
        assert np.allclose(a[finite], b[finite], rtol=1e-8)

    def test_cholinv_sharded_accuracy(self):
        # two disjoint meshes glued into one graph: shards factor smaller
        left = fe_mesh_2d(6, 7, seed=1)
        right = fe_mesh_2d(5, 6, seed=2)
        n = left.num_nodes + right.num_nodes
        graph = Graph(
            n,
            np.concatenate([left.heads, right.heads + left.num_nodes]),
            np.concatenate([left.tails, right.tails + left.num_nodes]),
            np.concatenate([left.weights, right.weights]),
        )
        rng = np.random.default_rng(3)
        pairs = np.column_stack([rng.integers(0, n, 300), rng.integers(0, n, 300)])
        truth = build_engine(graph, EngineConfig(method="exact")).query_pairs(pairs)
        sharded = build_engine(graph, EngineConfig(sharded=True)).query_pairs(pairs)
        finite = np.isfinite(truth) & (truth > 0)
        assert np.array_equal(np.isfinite(truth), np.isfinite(sharded))
        rel = np.abs(sharded[finite] - truth[finite]) / truth[finite]
        assert rel.max() < 2e-2

    def test_lazy_builds_only_touched_shards(self, multi_component):
        engine = build_engine(
            multi_component, EngineConfig(method="exact", sharded=True,
                                          lazy_shards=True)
        )
        assert engine.shards_built == 0
        assert np.isinf(engine.query(0, 3))  # cross-component: no build
        assert engine.shards_built == 0
        engine.query(3, 5)
        assert engine.shards_built == 1

    def test_singleton_components_never_build(self, multi_component):
        engine = build_engine(
            multi_component, EngineConfig(method="exact", sharded=True)
        )
        assert engine.num_shards == 4
        assert engine.shards_built == 3  # the isolated node builds nothing
        assert engine.query(9, 9) == 0.0

    def test_shard_sizes(self, multi_component):
        engine = ShardedEngine(multi_component, EngineConfig(method="exact"))
        assert sorted(engine.shard_sizes().tolist()) == [1, 3, 3, 3]

    def test_many_shards_one_pair_each(self):
        # 60 disjoint 2-paths: the batch grouping must touch each shard
        # exactly once, not rescan the batch per shard
        k = 60
        edges = [(3 * i + a, 3 * i + a + 1) for i in range(k) for a in (0, 1)]
        graph = Graph.from_edges(3 * k, edges)
        engine = build_engine(graph, EngineConfig(method="exact", sharded=True))
        pairs = [(3 * i, 3 * i + 2) for i in range(k)] + [(0, 4)]
        values = engine.query_pairs(pairs)
        assert np.allclose(values[:k], 2.0)  # two unit resistors in series
        assert np.isinf(values[k])


class TestPersistence:
    def test_save_load_bit_identical(self, tmp_path, multi_component):
        engine = build_engine(multi_component, EngineConfig(epsilon=1e-3))
        path = engine.save(tmp_path / "engine.npz")
        restored = load_engine(path)
        rng = np.random.default_rng(1)
        pairs = np.column_stack([rng.integers(0, 10, 300), rng.integers(0, 10, 300)])
        assert np.array_equal(
            engine.query_pairs(pairs), restored.query_pairs(pairs)
        )
        assert isinstance(restored, CholInvEffectiveResistance)
        assert restored.config.epsilon == engine.epsilon
        assert restored.stats.nnz == engine.stats.nnz

    def test_save_appends_npz_suffix(self, tmp_path, weighted_mesh):
        engine = build_engine(weighted_mesh, EngineConfig())
        path = engine.save(tmp_path / "engine.bin")
        assert path.name == "engine.bin.npz"
        assert load_engine(tmp_path / "engine.bin").n == weighted_mesh.num_nodes

    def test_non_cholinv_engines_refuse(self, tmp_path, weighted_mesh):
        engine = build_engine(weighted_mesh, EngineConfig(method="exact"))
        with pytest.raises(NotImplementedError, match="persistence"):
            engine.save(tmp_path / "nope.npz")
        with pytest.raises(NotImplementedError, match="persistence"):
            save_engine(engine, tmp_path / "nope.npz")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no saved engine"):
            load_engine(tmp_path / "absent.npz")

    def test_loaded_engine_has_no_depths(self, tmp_path, weighted_mesh):
        engine = build_engine(weighted_mesh, EngineConfig())
        restored = load_engine(engine.save(tmp_path / "e.npz"))
        with pytest.raises(ValueError, match="depth"):
            _ = restored.depths

    def test_service_from_saved(self, tmp_path, weighted_mesh):
        original = ResistanceService(weighted_mesh, epsilon=1e-4, drop_tol=1e-4)
        path = original.engine.save(tmp_path / "svc.npz")
        warm = ResistanceService.from_saved(path)
        pairs = [(0, 7), (1, 9)]
        assert np.array_equal(
            original.query_pairs(pairs), warm.query_pairs(pairs)
        )
        assert warm.method == "cholinv"
        assert warm.config.epsilon == 1e-4
        # refresh rebuilds with the saved configuration (corner-to-corner
        # edge is new, so it survives coalescing)
        far = weighted_mesh.num_nodes - 1
        stats = warm.refresh_after_edge_update(edges=[(0, far)], weights=[1.0])
        assert stats.num_edges == weighted_mesh.num_edges + 1
        assert np.isfinite(warm.query(0, 7))

    def test_warm_refresh_regrounds_like_cold(self, tmp_path, weighted_mesh):
        """A default (ground_value=None) config must stay None through
        save/load, so refreshing a warm-started service recomputes the
        grounding from the *new* graph exactly like a cold service."""
        cold = ResistanceService(weighted_mesh)
        warm = ResistanceService.from_saved(
            cold.engine.save(tmp_path / "ground.npz")
        )
        assert warm.config.ground_value is None
        far = weighted_mesh.num_nodes - 1
        heavy = [(0, far)], [100.0]  # shifts the mean edge weight a lot
        cold.refresh_after_edge_update(edges=heavy[0], weights=heavy[1])
        warm.refresh_after_edge_update(edges=heavy[0], weights=heavy[1])
        pairs = [(0, 7), (1, far)]
        assert np.array_equal(
            cold.engine.query_pairs(pairs), warm.engine.query_pairs(pairs)
        )
        assert warm.engine.ground_value == cold.engine.ground_value


class TestServiceEngineIntegration:
    def test_service_accepts_config(self, weighted_mesh):
        service = ResistanceService(
            weighted_mesh, config=EngineConfig(method="exact")
        )
        assert service.method == "exact"
        assert np.isfinite(service.query(0, 5))

    def test_service_serves_sharded_engine(self, multi_component):
        service = ResistanceService(
            multi_component, config=EngineConfig(method="exact", sharded=True)
        )
        assert np.isinf(service.query(0, 3))
        assert service.query(0, 1) == pytest.approx(2.0 / 3.0)

    def test_service_empty_batch(self, weighted_mesh):
        service = ResistanceService(weighted_mesh)
        assert service.query_pairs([]).shape == (0,)

    def test_service_config_plus_kwargs_rejected(self, weighted_mesh):
        with pytest.raises(ValueError):
            ResistanceService(
                weighted_mesh, config=EngineConfig(), epsilon=1e-2
            )

    def test_refresh_weights_length_mismatch(self, weighted_mesh):
        service = ResistanceService(weighted_mesh, method="exact")
        with pytest.raises(ValueError, match="weights length"):
            service.refresh_after_edge_update(
                edges=[(0, 1), (1, 2)], weights=[1.0]
            )
