"""Tests for the Theorem 1 / Eq. 25-26 error machinery."""

import numpy as np

from repro.cholesky.numeric import cholesky
from repro.core.approx_inverse import approximate_inverse
from repro.core.effective_resistance import (
    CholInvEffectiveResistance,
    ExactEffectiveResistance,
)
from repro.core.error_bounds import (
    alpha_coefficient,
    cholinv_error_budget,
    column_error_report,
    estimate_query_errors,
    theorem1_bound,
)
from repro.graphs.generators import fe_mesh_2d
from repro.graphs.laplacian import grounded_laplacian


def make_factor(seed=0):
    graph = fe_mesh_2d(7, 7, seed=seed)
    matrix, _ = grounded_laplacian(graph, 1.0)
    return graph, cholesky(matrix, ordering="amd")


class TestTheorem1Bound:
    def test_scales_linearly_with_eps(self):
        _, factor = make_factor()
        b1 = theorem1_bound(factor.lower, 1e-3)
        b2 = theorem1_bound(factor.lower, 2e-3)
        assert np.allclose(b2, 2 * b1)

    def test_report_measured_below_bound(self):
        _, factor = make_factor()
        eps = 5e-2
        z, _ = approximate_inverse(factor.lower, epsilon=eps)
        report = column_error_report(factor.lower, z, eps, seed=1, max_samples=30)
        assert report.max_violation <= 1e-10
        assert report.measured.shape == report.bound.shape

    def test_tightness_finite_when_bound_positive(self):
        _, factor = make_factor()
        eps = 1e-2
        z, _ = approximate_inverse(factor.lower, epsilon=eps)
        report = column_error_report(factor.lower, z, eps, seed=2, max_samples=20)
        positive = report.bound > 0
        assert np.all(report.tightness[positive] <= 1.0 + 1e-9)


class TestAlphaCoefficient:
    def test_nonnegative(self):
        _, factor = make_factor()
        assert alpha_coefficient(factor.lower, 0, 10) >= 0.0

    def test_eq26_bound_holds_empirically(self):
        """|R̃/R − 1| ≤ α_pq·ε + o(ε) — check at small ε with exact depth."""
        graph, factor = make_factor(seed=3)
        eps = 1e-4
        z, _ = approximate_inverse(factor.lower, epsilon=eps)
        exact_est = ExactEffectiveResistance(graph)
        approx_est = CholInvEffectiveResistance(graph, epsilon=eps, drop_tol=0.0)
        rng = np.random.default_rng(0)
        n = graph.num_nodes
        inv_position = approx_est._position
        for _ in range(10):
            p, q = rng.choice(n, size=2, replace=False)
            alpha = alpha_coefficient(
                factor.lower, int(inv_position[p]), int(inv_position[q])
            )
            rel = abs(approx_est.query(p, q) / exact_est.query(p, q) - 1.0)
            assert rel <= alpha * eps + 1e-6


class TestQueryErrorEstimate:
    def test_estimator_protocol(self, weighted_mesh):
        est = CholInvEffectiveResistance(weighted_mesh, epsilon=1e-3, drop_tol=1e-3)
        report = estimate_query_errors(est, weighted_mesh, num_samples=50, seed=4)
        assert report.average <= report.maximum
        assert report.sample_size == 50
        assert report.average < 0.05

    def test_sample_capped_at_edge_count(self, tiny_path):
        est = ExactEffectiveResistance(tiny_path)
        report = estimate_query_errors(est, tiny_path, num_samples=100, seed=5)
        assert report.sample_size == tiny_path.num_edges
        assert report.maximum < 1e-9  # exact vs exact

    def test_reuses_prebuilt_exact_engine(self, weighted_mesh):
        exact = ExactEffectiveResistance(weighted_mesh)
        est = CholInvEffectiveResistance(weighted_mesh)
        report = estimate_query_errors(
            est, weighted_mesh, num_samples=20, seed=6, exact=exact
        )
        assert report.sample_size == 20


def test_error_budget_summary(weighted_mesh):
    est = CholInvEffectiveResistance(weighted_mesh, epsilon=1e-3, drop_tol=1e-3)
    budget = cholinv_error_budget(est)
    assert budget["epsilon"] == 1e-3
    assert budget["max_depth"] == est.max_depth
    assert np.isclose(
        budget["worst_case_column_bound"], est.max_depth * 1e-3
    )
