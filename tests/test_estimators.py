"""Tests for the tiered-accuracy estimator engines (repro.estimators).

Covers the three subsystem guarantees:

* **determinism** — every stochastic estimator draws all randomness from
  its config seed through ``np.random.default_rng``, so same-seed builds
  answer bit-identically (and the local-walk estimator is additionally
  batch-order independent, its RNG being keyed per pair);
* **bound containment** — the landmark tier's certified interval contains
  the cholinv-grade reference it is calibrated against;
* **escalation** — the adaptive wrapper serves from the cheapest tier
  whose bound meets the tolerance and falls through to the exact-grade
  tier otherwise, sharing one factorisation between the landmark tier
  and its cholinv fallback.
"""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, build_engine
from repro.estimators import (
    AdaptiveEffectiveResistance,
    LandmarkEffectiveResistance,
    LocalWalkEffectiveResistance,
)
from repro.estimators.landmark import select_landmarks
from repro.graphs.generators import fe_mesh_2d, grid_2d


@pytest.fixture(scope="module")
def mesh():
    return fe_mesh_2d(8, 9, seed=2)


@pytest.fixture(scope="module")
def reference(mesh):
    """The cholinv-grade engine the tiers promise to agree with."""
    return build_engine(mesh, EngineConfig())


# ----------------------------------------------------------------------
# determinism: same seed → bit-identical answers, per stochastic tier
# ----------------------------------------------------------------------

STOCHASTIC_CONFIGS = {
    "local_walk": EngineConfig(
        method="local_walk", num_walks=64, walk_length=16, seed=9
    ),
    "spanning_tree": EngineConfig(method="spanning_tree", num_trees=40, seed=9),
    "landmark-random": EngineConfig(
        method="landmark", num_landmarks=6, landmark_strategy="random", seed=9
    ),
}


@pytest.mark.parametrize("name", sorted(STOCHASTIC_CONFIGS))
def test_same_seed_is_bit_identical(mesh, name):
    config = STOCHASTIC_CONFIGS[name]
    rng = np.random.default_rng(4)
    if name == "spanning_tree":
        pairs = mesh.edge_array()[:40]
    else:
        pairs = rng.integers(0, mesh.num_nodes, size=(40, 2))
    first = build_engine(mesh, config)
    second = build_engine(mesh, config)
    values_a, halves_a = first.query_pairs_with_bounds(pairs)
    values_b, halves_b = second.query_pairs_with_bounds(pairs)
    np.testing.assert_array_equal(values_a, values_b)
    np.testing.assert_array_equal(halves_a, halves_b)


@pytest.mark.parametrize("name", sorted(STOCHASTIC_CONFIGS))
def test_different_seed_changes_something(mesh, name):
    config = STOCHASTIC_CONFIGS[name]
    reseeded = config.replace(seed=10)
    if name == "spanning_tree":
        pairs = mesh.edge_array()[:60]
    else:
        pairs = np.random.default_rng(4).integers(
            0, mesh.num_nodes, size=(60, 2)
        )
    a = build_engine(mesh, config).query_pairs(pairs)
    b = build_engine(mesh, reseeded).query_pairs(pairs)
    assert not np.array_equal(a, b)


def test_local_walk_is_batch_order_independent(mesh):
    """The walk RNG is keyed per (seed, lo, hi), so a pair's answer does
    not depend on where in a batch it appears or what accompanies it."""
    engine = build_engine(
        mesh, EngineConfig(method="local_walk", num_walks=32,
                           walk_length=12, seed=3)
    )
    pairs = np.array([(0, 5), (2, 9), (11, 40), (5, 0)])
    batched = engine.query_pairs(pairs)
    # reversed order, plus noise pairs interleaved
    shuffled = engine.query_pairs(
        np.array([(11, 40), (1, 2), (9, 2), (0, 5), (3, 4)])
    )
    assert batched[2] == shuffled[0]
    assert batched[1] == shuffled[2]  # and symmetric: (2,9) == (9,2)
    assert batched[0] == shuffled[3]
    assert batched[0] == batched[3]  # (0,5) == (5,0) inside one batch


# ----------------------------------------------------------------------
# landmark tier: certified containment of the cholinv-grade reference
# ----------------------------------------------------------------------

def test_landmark_bounds_contain_reference(mesh, reference):
    rng = np.random.default_rng(7)
    pairs = rng.integers(0, mesh.num_nodes, size=(300, 2))
    truth = reference.query_pairs(pairs)
    for k in (4, 12, 32):
        engine = LandmarkEffectiveResistance.from_base_engine(
            reference, num_landmarks=k
        )
        values, halves = engine.query_pairs_with_bounds(pairs)
        assert np.all(truth >= values - halves - 1e-12)
        assert np.all(truth <= values + halves + 1e-12)
        finite = np.isfinite(values)
        off_diagonal = finite & (pairs[:, 0] != pairs[:, 1])
        assert np.all(values[off_diagonal] > 0)


def test_landmark_full_rank_is_near_exact(reference):
    """With every node a landmark the projection spans all of Z̃, so the
    estimate collapses onto the reference and the interval onto a point."""
    engine = LandmarkEffectiveResistance.from_base_engine(
        reference, num_landmarks=reference.n
    )
    pairs = np.random.default_rng(5).integers(0, reference.n, size=(100, 2))
    values, halves = engine.query_pairs_with_bounds(pairs)
    truth = reference.query_pairs(pairs)
    finite = np.isfinite(truth)
    np.testing.assert_allclose(values[finite], truth[finite],
                               rtol=1e-8, atol=1e-10)
    scale = np.maximum(np.abs(truth[finite]), 1e-12)
    assert np.max(halves[finite] / scale) < 1e-6


def test_landmark_strategies_and_clamping(mesh):
    n = mesh.num_nodes
    for strategy in ("degree", "random", "spread"):
        picked = select_landmarks(mesh, 5, strategy, seed=0)
        assert picked.shape == (5,)
        assert np.unique(picked).size == 5
    # count clamps to n instead of failing
    assert select_landmarks(mesh, 10 * n, "degree", seed=0).shape == (n,)


def test_landmark_query_chunking_matches_unchunked(mesh, reference, monkeypatch):
    engine = LandmarkEffectiveResistance.from_base_engine(
        reference, num_landmarks=8
    )
    pairs = np.random.default_rng(6).integers(0, mesh.num_nodes, size=(50, 2))
    whole = engine.query_pairs_with_bounds(pairs)
    monkeypatch.setattr("repro.estimators.landmark._QUERY_CHUNK", 7)
    chunked = engine.query_pairs_with_bounds(pairs)
    np.testing.assert_array_equal(whole[0], chunked[0])
    np.testing.assert_array_equal(whole[1], chunked[1])


# ----------------------------------------------------------------------
# local-walk tier: statistical sanity on an analytic case
# ----------------------------------------------------------------------

def test_local_walk_on_path_graph_is_roughly_right():
    from repro.graphs.graph import Graph

    path = Graph.from_edges(6, [(i, i + 1) for i in range(5)])
    engine = LocalWalkEffectiveResistance(
        path, num_walks=2048, walk_length=256, seed=0
    )
    values, halves = engine.query_pairs_with_bounds([(0, 1), (1, 4)])
    # unit resistors in series: R(0,1) = 1, R(1,4) = 3
    assert values[0] == pytest.approx(1.0, rel=0.25)
    assert values[1] == pytest.approx(3.0, rel=0.25)
    assert np.all(halves > 0) and np.all(np.isfinite(halves))


def test_local_walk_respects_cut_floor(mesh):
    engine = build_engine(
        mesh, EngineConfig(method="local_walk", num_walks=8,
                           walk_length=4, seed=1)
    )
    from repro.estimators.base import resistance_floor, weighted_degrees

    pairs = np.random.default_rng(2).integers(0, mesh.num_nodes, size=(80, 2))
    values = engine.query_pairs(pairs)
    wdeg = weighted_degrees(mesh)
    floor = resistance_floor(wdeg, pairs[:, 0], pairs[:, 1])
    active = pairs[:, 0] != pairs[:, 1]
    assert np.all(values[active] >= floor[active] - 1e-15)


# ----------------------------------------------------------------------
# adaptive ladder: escalation, authority, factor sharing
# ----------------------------------------------------------------------

def test_adaptive_shares_the_factorisation(mesh):
    engine = build_engine(
        mesh, EngineConfig(method="adaptive", num_landmarks=4, seed=0)
    )
    assert isinstance(engine, AdaptiveEffectiveResistance)
    landmark = engine.tier_engines["landmark"]
    assert isinstance(landmark, LandmarkEffectiveResistance)
    assert engine.tier_engines["cholinv"] is landmark.base_engine


def test_adaptive_tight_tolerance_matches_exact_tier(mesh):
    engine = build_engine(
        mesh,
        EngineConfig(method="adaptive", num_landmarks=4, seed=0,
                     tier_rel_tol=1e-9),
    )
    pairs = np.random.default_rng(8).integers(0, mesh.num_nodes, size=(120, 2))
    values = engine.query_pairs(pairs)
    truth = engine.tier_engines["cholinv"].query_pairs(pairs)
    finite = np.isfinite(truth)
    # almost everything escalates at this tolerance, and whatever the
    # landmark tier kept was certified to relative error 1e-9
    assert engine.last_tier_counts.get("cholinv", 0) > 0
    np.testing.assert_allclose(values[finite], truth[finite], rtol=2e-9)


def test_adaptive_loose_tolerance_serves_from_cheap_tier(mesh):
    engine = build_engine(
        mesh,
        EngineConfig(method="adaptive", num_landmarks=24, seed=0,
                     tier_rel_tol=0.5),
    )
    pairs = np.random.default_rng(8).integers(0, mesh.num_nodes, size=(120, 2))
    engine.query_pairs(pairs)
    assert engine.last_tier_counts.get("landmark", 0) > 0


def test_adaptive_bounds_respect_tier_tolerance(mesh):
    tolerance = 0.05
    engine = build_engine(
        mesh,
        EngineConfig(method="adaptive", num_landmarks=16, seed=0,
                     tier_rel_tol=tolerance),
    )
    pairs = np.random.default_rng(9).integers(0, mesh.num_nodes, size=(200, 2))
    values = engine.query_pairs(pairs)
    truth = engine.tier_engines["cholinv"].query_pairs(pairs)
    finite = np.isfinite(truth) & (truth > 0)
    rel = np.abs(values[finite] - truth[finite]) / truth[finite]
    # certified acceptance: served answers stay within the ladder tolerance
    assert rel.max() <= tolerance


def test_adaptive_rejects_unknown_and_self_referential_tiers(mesh):
    with pytest.raises(ValueError, match="not a usable engine"):
        build_engine(mesh, EngineConfig(method="adaptive", tiers=("bogus",)))
    with pytest.raises(ValueError, match="adaptive"):
        build_engine(mesh, EngineConfig(method="adaptive", tiers=("adaptive",)))


def test_adaptive_with_spanning_tree_coarse_tier():
    """The spanning-tree baseline rides along as an optional coarse tier:
    edges it certifies are served, everything else escalates."""
    graph = grid_2d(6, 6, seed=0)
    engine = build_engine(
        graph,
        EngineConfig(
            method="adaptive",
            tiers=("spanning_tree", "cholinv"),
            num_trees=1500,
            seed=0,
            tier_rel_tol=0.2,
        ),
    )
    edges = graph.edge_array()[:20]
    rng = np.random.default_rng(1)
    non_edges = rng.integers(0, graph.num_nodes, size=(20, 2))
    values = engine.query_pairs(np.concatenate([edges, non_edges]))
    truth = engine.tier_engines["cholinv"].query_pairs(
        np.concatenate([edges, non_edges])
    )
    finite = np.isfinite(truth) & (truth > 0)
    rel = np.abs(values[finite] - truth[finite]) / truth[finite]
    assert rel.max() <= 0.2
    assert engine.last_tier_counts.get("spanning_tree", 0) > 0
