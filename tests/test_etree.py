"""Tests for elimination-tree analysis against brute-force references."""

import numpy as np
import scipy.sparse as sp

from repro.cholesky.etree import column_counts, elimination_tree, postorder, tree_depths
from repro.graphs.generators import fe_mesh_2d, grid_2d
from repro.graphs.laplacian import grounded_laplacian
from tests.conftest import random_spd


def boolean_fill(matrix: sp.spmatrix) -> np.ndarray:
    """Brute-force symbolic elimination: returns the filled lower pattern."""
    n = matrix.shape[0]
    pattern = matrix.toarray() != 0
    np.fill_diagonal(pattern, True)
    pattern = pattern | pattern.T
    for j in range(n):
        below = np.flatnonzero(pattern[j + 1 :, j]) + j + 1
        for a in below:
            pattern[a, below] = True
    return np.tril(pattern)


def reference_parent(filled_lower: np.ndarray) -> np.ndarray:
    """Elimination tree straight from the filled pattern."""
    n = filled_lower.shape[0]
    parent = -np.ones(n, dtype=np.int64)
    for j in range(n):
        below = np.flatnonzero(filled_lower[j + 1 :, j])
        if below.size:
            parent[j] = below[0] + j + 1
    return parent


class TestEliminationTree:
    def test_against_brute_force_spd(self):
        matrix = random_spd(40, 0.1, seed=3)
        filled = boolean_fill(matrix)
        assert np.array_equal(elimination_tree(matrix), reference_parent(filled))

    def test_against_brute_force_mesh(self):
        graph = fe_mesh_2d(5, 6, seed=2)
        matrix, _ = grounded_laplacian(graph, 1.0)
        filled = boolean_fill(matrix)
        assert np.array_equal(elimination_tree(matrix), reference_parent(filled))

    def test_path_graph_is_a_path_tree(self):
        graph = grid_2d(1, 6)  # path of 6 nodes
        matrix, _ = grounded_laplacian(graph, 1.0)
        parent = elimination_tree(matrix)
        assert np.array_equal(parent, [1, 2, 3, 4, 5, -1])

    def test_parents_are_larger(self, spd_matrix):
        parent = elimination_tree(spd_matrix)
        nodes = np.flatnonzero(parent >= 0)
        assert np.all(parent[nodes] > nodes)


class TestPostorder:
    def test_children_before_parents(self, spd_matrix):
        parent = elimination_tree(spd_matrix)
        post = postorder(parent)
        position = np.empty_like(post)
        position[post] = np.arange(post.shape[0])
        for v, p in enumerate(parent):
            if p != -1:
                assert position[v] < position[p]

    def test_is_permutation(self, spd_matrix):
        parent = elimination_tree(spd_matrix)
        post = postorder(parent)
        assert np.array_equal(np.sort(post), np.arange(parent.shape[0]))


class TestDepthsAndCounts:
    def test_tree_depths_path(self):
        parent = np.array([1, 2, 3, -1])
        assert np.array_equal(tree_depths(parent), [3, 2, 1, 0])

    def test_tree_depths_forest(self):
        parent = np.array([2, 2, -1, -1])
        assert np.array_equal(tree_depths(parent), [1, 1, 0, 0])

    def test_column_counts_match_filled_pattern(self):
        matrix = random_spd(35, 0.12, seed=9)
        filled = boolean_fill(matrix)
        expected = filled.sum(axis=0)
        assert np.array_equal(column_counts(matrix), expected)
