"""Smoke tests: the fast examples must run end-to-end as subprocesses.

Only the quick examples are exercised here (the heavier ones run the same
code paths covered by the integration tests); each is executed exactly as
a user would run it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "graph_sparsification.py",
    "incremental_design.py",
    "tiered_quickstart.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_all_examples_importable():
    """Every example compiles (syntax + imports resolve lazily)."""
    import py_compile

    for script in EXAMPLES.glob("*.py"):
        py_compile.compile(str(script), doraise=True)
