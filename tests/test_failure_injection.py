"""Failure-injection tests: degenerate inputs must fail loudly or degrade
gracefully, never silently corrupt results."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cholesky.incomplete import CholeskyBreakdownError, ichol
from repro.cholesky.numeric import cholesky
from repro.core.approx_inverse import approximate_inverse
from repro.core.effective_resistance import (
    CholInvEffectiveResistance,
    ExactEffectiveResistance,
)
from repro.graphs.graph import Graph
from repro.graphs.generators import grid_2d, path_graph
from repro.powergrid.netlist import PowerGrid
from repro.powergrid.generators import synthetic_ibmpg_like
from repro.reduction.pipeline import PGReducer, ReductionConfig
from repro.reduction.schur import schur_reduce


class TestDegenerateGraphs:
    def test_single_node_graph(self):
        g = Graph.from_edges(1, [])
        est = ExactEffectiveResistance(g)
        assert est.query(0, 0) == 0.0

    def test_single_edge_graph(self):
        g = Graph.from_edges(2, [(0, 1, 2.0)])
        est = CholInvEffectiveResistance(g)
        assert np.isclose(est.query(0, 1), 0.5)

    def test_fully_disconnected(self):
        g = Graph.from_edges(3, [])
        est = ExactEffectiveResistance(g)
        assert est.query(0, 2) == np.inf

    def test_huge_weight_ratio(self):
        """14 orders of magnitude of conductance spread must not break.

        Such a graph is inherently ill-conditioned (κ ≈ 1e14), so any
        float64 solver carries ~κ·ε_mach ≈ 1% relative error; the check is
        agreement at that level plus exactness on the well-conditioned
        moderate-spread variant.
        """
        g = Graph.from_edges(4, [(0, 1, 1e-7), (1, 2, 1e7), (2, 3, 1.0)])
        exact = ExactEffectiveResistance(g)
        approx = CholInvEffectiveResistance(g, epsilon=0.0, drop_tol=0.0)
        for p, q in [(0, 1), (1, 2), (0, 3)]:
            assert np.isclose(approx.query(p, q), exact.query(p, q), rtol=5e-2)

        mild = Graph.from_edges(4, [(0, 1, 1e-3), (1, 2, 1e3), (2, 3, 1.0)])
        exact_mild = ExactEffectiveResistance(mild)
        approx_mild = CholInvEffectiveResistance(mild, epsilon=0.0, drop_tol=0.0)
        for p, q in [(0, 1), (1, 2), (0, 3)]:
            assert np.isclose(
                approx_mild.query(p, q), exact_mild.query(p, q), rtol=1e-8
            )

    def test_star_with_huge_center_degree(self):
        from repro.graphs.generators import star_graph

        g = star_graph(500)
        est = CholInvEffectiveResistance(g, epsilon=1e-3, drop_tol=1e-3)
        assert np.isclose(est.query(1, 2), 2.0, rtol=0.05)


class TestNumericFailures:
    def test_indefinite_matrix_rejected_by_both_engines(self):
        bad = sp.csc_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(Exception):
            cholesky(bad, ordering="natural", engine="uplooking")
        with pytest.raises(Exception):
            ichol(bad, max_retries=0)

    def test_ichol_retry_cap_respected(self):
        bad = sp.csc_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(CholeskyBreakdownError):
            ichol(bad, max_retries=2)

    def test_approx_inverse_rejects_non_triangular_diag(self):
        bad = sp.csc_matrix(np.array([[0.0, 0.0], [1.0, 2.0]]))
        with pytest.raises(ValueError):
            approximate_inverse(bad)

    def test_schur_rejects_empty_keep(self):
        from repro.graphs.laplacian import laplacian

        with pytest.raises(ValueError):
            schur_reduce(laplacian(path_graph(4)), keep=np.array([], dtype=np.int64))


class TestPipelineRobustness:
    def test_grid_with_isolated_island(self):
        """An unconnected resistor island without sources must not crash
        the reduction (it is dropped or kept inert)."""
        grid = synthetic_ibmpg_like(nx=8, ny=8, pad_pitch=4, seed=0)
        a = grid.node("island_a")
        b = grid.node("island_b")
        grid.add_resistor(a, b, 1.0)
        reducer = PGReducer(grid, ReductionConfig(er_method="exact", seed=0))
        reduced = reducer.reduce()
        from repro.powergrid.dc import dc_analysis

        original_ports = synthetic_ibmpg_like(nx=8, ny=8, pad_pitch=4, seed=0).port_nodes()
        solution = dc_analysis(reduced.grid)
        assert np.all(np.isfinite(solution.voltages))
        assert np.all(reduced.reduced_index_of(original_ports) >= 0)

    def test_all_nodes_are_ports(self):
        """Degenerate but legal: nothing to eliminate, reduction ≈ identity."""
        pg = PowerGrid()
        nodes = [pg.node(f"n{i}") for i in range(6)]
        for i in range(5):
            pg.add_resistor(nodes[i], nodes[i + 1], 1.0)
        pg.add_vsource(nodes[0], 1.0)
        for node in nodes[1:]:
            pg.add_isource(node, 1e-3)
        reducer = PGReducer(pg, ReductionConfig(er_method="exact", num_blocks=2, seed=0))
        reduced = reducer.reduce()
        assert reduced.grid.num_nodes == 6

    def test_single_block(self):
        grid = synthetic_ibmpg_like(nx=8, ny=8, pad_pitch=4, seed=1)
        reducer = PGReducer(grid, ReductionConfig(er_method="cholinv", num_blocks=1, seed=0))
        reduced = reducer.reduce()
        from repro.powergrid.dc import dc_analysis

        original = dc_analysis(grid)
        solution = dc_analysis(reduced.grid)
        errors = reduced.port_voltage_errors(
            original.voltages, solution.voltages, grid.port_nodes()
        )
        assert errors.mean() / original.max_drop() < 0.1

    def test_many_blocks_tiny_grid(self):
        """More blocks than structure: must still produce a valid model."""
        grid = synthetic_ibmpg_like(nx=6, ny=6, pad_pitch=3, seed=2)
        reducer = PGReducer(grid, ReductionConfig(er_method="exact", num_blocks=8, seed=0))
        reduced = reducer.reduce()
        assert reduced.grid.num_nodes >= grid.port_nodes().size


class TestQueryEdgeCases:
    def test_empty_pair_array(self, small_grid):
        est = ExactEffectiveResistance(small_grid)
        out = est.query_pairs(np.empty((0, 2), dtype=np.int64))
        assert out.shape == (0,)

    def test_bad_pair_shape(self, small_grid):
        est = ExactEffectiveResistance(small_grid)
        with pytest.raises(ValueError):
            est.query_pairs(np.zeros((3, 3), dtype=np.int64))

    def test_repeated_pairs(self, small_grid):
        est = CholInvEffectiveResistance(small_grid)
        out = est.query_pairs([(0, 1), (0, 1), (1, 0)])
        assert np.isclose(out[0], out[1])
        assert np.isclose(out[0], out[2])
