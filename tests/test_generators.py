"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graphs.components import is_connected
from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    fe_mesh_2d,
    fe_mesh_3d,
    grid_2d,
    grid_3d,
    path_graph,
    random_geometric_graph,
    rmat_graph,
    star_graph,
    watts_strogatz_graph,
)


class TestDeterministicFamilies:
    def test_path(self):
        g = path_graph(6, weight=2.0)
        assert g.num_nodes == 6
        assert g.num_edges == 5
        assert np.all(g.weights == 2.0)
        assert is_connected(g)

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.num_edges == 7
        assert np.all(g.degrees() == 2.0)

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(9)
        assert g.num_edges == 8
        assert g.degrees()[0] == 8.0

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert np.all(g.degrees() == 5.0)


class TestGrids:
    def test_grid_2d_counts(self):
        g = grid_2d(4, 5)
        assert g.num_nodes == 20
        assert g.num_edges == 4 * 4 + 3 * 5  # horizontal + vertical
        assert is_connected(g)

    def test_grid_2d_jitter_bounds(self):
        g = grid_2d(6, 6, jitter=0.5, seed=3)
        assert np.all(g.weights >= 1.0 / 1.5 - 1e-12)
        assert np.all(g.weights <= 1.5 + 1e-12)

    def test_grid_2d_deterministic(self):
        a = grid_2d(5, 5, jitter=0.2, seed=11)
        b = grid_2d(5, 5, jitter=0.2, seed=11)
        assert np.allclose(a.weights, b.weights)

    def test_grid_3d_counts(self):
        g = grid_3d(3, 4, 5)
        assert g.num_nodes == 60
        expected = 2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4
        assert g.num_edges == expected
        assert is_connected(g)


class TestMeshes:
    def test_fe_mesh_2d(self):
        g = fe_mesh_2d(6, 8, seed=0)
        grid_edges = 5 * 8 + 6 * 7
        assert g.num_edges == grid_edges + 5 * 7  # one diagonal per cell
        assert is_connected(g)
        assert np.all(g.weights > 0)

    def test_fe_mesh_2d_weight_range(self):
        g = fe_mesh_2d(5, 5, weight_low=0.25, weight_high=4.0, seed=1)
        assert g.weights.min() >= 0.25 - 1e-12
        assert g.weights.max() <= 4.0 + 1e-12

    def test_fe_mesh_3d(self):
        g = fe_mesh_3d(3, 3, 3, seed=0)
        assert g.num_nodes == 27
        assert is_connected(g)


class TestRandomFamilies:
    def test_barabasi_albert(self):
        g = barabasi_albert_graph(300, attachments=3, seed=5)
        assert g.num_nodes == 300
        assert is_connected(g)
        # preferential attachment must produce a heavy tail: max degree
        # well above the mean
        unweighted_degrees = np.bincount(
            np.concatenate([g.heads, g.tails]), minlength=300
        )
        assert unweighted_degrees.max() > 4 * unweighted_degrees.mean()

    def test_barabasi_albert_deterministic(self):
        a = barabasi_albert_graph(100, seed=9)
        b = barabasi_albert_graph(100, seed=9)
        assert np.array_equal(a.heads, b.heads)
        assert np.array_equal(a.tails, b.tails)

    def test_watts_strogatz(self):
        g = watts_strogatz_graph(200, neighbours=4, rewire_prob=0.2, seed=2)
        assert g.num_nodes == 200
        assert is_connected(g)  # ring backbone preserved

    def test_watts_strogatz_validation(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, neighbours=3)

    def test_rmat(self):
        g = rmat_graph(8, edge_factor=6, seed=4)
        assert g.num_nodes == 256
        assert is_connected(g)  # the connect path guarantees it
        degrees = np.bincount(np.concatenate([g.heads, g.tails]), minlength=256)
        assert degrees.max() > 3 * degrees.mean()  # skewed degrees

    def test_rmat_probability_validation(self):
        with pytest.raises(ValueError):
            rmat_graph(4, probabilities=(0.5, 0.5, 0.5, 0.5))

    def test_random_geometric(self):
        g = random_geometric_graph(150, radius=0.2, seed=8)
        assert g.num_nodes == 150
        assert g.num_edges > 0
        assert np.all(g.weights > 0)

    def test_random_geometric_weight_is_inverse_distance(self):
        g = random_geometric_graph(80, radius=0.3, seed=8)
        # conductance = 1/distance, and all distances < radius
        assert np.all(g.weights > 1.0 / 0.3 - 1e-9)
