"""Unit tests for the Graph container."""

import numpy as np
import pytest

from repro.graphs.graph import Graph


class TestConstruction:
    def test_from_edges_pairs(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_nodes == 4
        assert g.num_edges == 3
        assert np.all(g.weights == 1.0)

    def test_from_edges_triples(self):
        g = Graph.from_edges(3, [(0, 1, 2.5), (1, 2, 0.5)])
        assert np.allclose(g.weights, [2.5, 0.5])

    def test_from_edges_separate_weights(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)], weights=[3.0, 4.0])
        assert np.allclose(g.weights, [3.0, 4.0])

    def test_from_edges_inline_and_separate_weights_conflict(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(0, 1, 1.0)], weights=[2.0])

    def test_empty_graph(self):
        g = Graph.from_edges(5, [])
        assert g.num_nodes == 5
        assert g.num_edges == 0

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError, match="self loops"):
            Graph.from_edges(3, [(1, 1)])

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError, match="positive"):
            Graph.from_edges(3, [(0, 1, 0.0)])
        with pytest.raises(ValueError, match="positive"):
            Graph.from_edges(3, [(0, 1, -1.0)])

    def test_rejects_out_of_range_endpoints(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_edges(2, [(0, 5)])

    def test_rejects_negative_node_ids(self):
        with pytest.raises(ValueError, match="negative"):
            Graph(3, np.array([-1]), np.array([1]), np.array([1.0]))

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError, match="at least one node"):
            Graph.from_edges(0, [])

    def test_mismatched_array_lengths(self):
        with pytest.raises(ValueError, match="identical shapes"):
            Graph(3, np.array([0, 1]), np.array([1]), np.array([1.0]))

    def test_from_sparse_adjacency(self, small_grid):
        rebuilt = Graph.from_sparse_adjacency(small_grid.adjacency())
        assert rebuilt.num_nodes == small_grid.num_nodes
        assert rebuilt.num_edges == small_grid.num_edges
        assert np.allclose(
            rebuilt.adjacency().toarray(), small_grid.adjacency().toarray()
        )


class TestRoundTrips:
    def test_networkx_round_trip(self, weighted_mesh):
        back = Graph.from_networkx(weighted_mesh.to_networkx())
        assert back.num_nodes == weighted_mesh.num_nodes
        assert np.allclose(
            back.adjacency().toarray(), weighted_mesh.adjacency().toarray()
        )

    def test_adjacency_symmetric(self, weighted_mesh):
        adj = weighted_mesh.adjacency()
        assert abs(adj - adj.T).nnz == 0


class TestOperations:
    def test_degrees_path(self, tiny_path):
        assert np.allclose(tiny_path.degrees(), [1, 2, 2, 2, 1])

    def test_degrees_weighted(self):
        g = Graph.from_edges(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert np.allclose(g.degrees(), [2.0, 5.0, 3.0])

    def test_coalesce_merges_parallel_edges(self):
        g = Graph.from_edges(3, [(0, 1, 1.0), (1, 0, 2.0), (1, 2, 1.0)])
        merged = g.coalesce()
        assert merged.num_edges == 2
        idx = np.lexsort((merged.tails, merged.heads))
        assert np.allclose(np.sort(merged.weights[idx]), [1.0, 3.0])

    def test_coalesce_canonical_orientation(self):
        g = Graph.from_edges(4, [(3, 1, 1.0), (1, 3, 1.0)]).coalesce()
        assert g.num_edges == 1
        assert g.heads[0] < g.tails[0]
        assert g.weights[0] == 2.0

    def test_coalesce_idempotent(self, weighted_mesh):
        once = weighted_mesh.coalesce()
        twice = once.coalesce()
        assert once.num_edges == twice.num_edges
        assert np.allclose(once.weights, twice.weights)

    def test_subgraph(self, small_grid):
        nodes = np.array([0, 1, 8, 9])  # top-left 2x2 block of the 8x8 grid
        sub, original = small_grid.subgraph(nodes)
        assert sub.num_nodes == 4
        assert sub.num_edges == 4  # the 2x2 square
        assert np.array_equal(original, nodes)

    def test_subgraph_excludes_crossing_edges(self, tiny_path):
        sub, _ = tiny_path.subgraph(np.array([0, 2, 4]))
        assert sub.num_edges == 0

    def test_with_weights(self, tiny_path):
        new = tiny_path.with_weights(np.full(4, 7.0))
        assert np.all(new.weights == 7.0)
        assert np.array_equal(new.heads, tiny_path.heads)

    def test_edge_array_shape(self, small_grid):
        arr = small_grid.edge_array()
        assert arr.shape == (small_grid.num_edges, 2)

    def test_reverse_resistances(self):
        g = Graph.from_edges(2, [(0, 1, 4.0)])
        assert np.allclose(g.reverse_resistances(), [0.25])

    def test_total_weight(self, tiny_path):
        assert tiny_path.total_weight() == 4.0
