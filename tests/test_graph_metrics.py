"""Tests for graph workload characterisation."""

import numpy as np

from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    grid_2d,
    path_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.metrics import (
    bfs_eccentricity,
    estimate_clustering,
    estimate_diameter,
    graph_stats,
)


class TestDiameter:
    def test_path_exact(self):
        assert estimate_diameter(path_graph(10)) == 9

    def test_cycle_exact(self):
        assert estimate_diameter(cycle_graph(12)) == 6

    def test_complete_graph(self):
        assert estimate_diameter(complete_graph(8)) == 1

    def test_grid_lower_bound(self):
        # true diameter of a 6x6 grid is 10; double sweep finds it
        assert estimate_diameter(grid_2d(6, 6)) == 10

    def test_edgeless(self):
        assert estimate_diameter(Graph.from_edges(3, [])) == 0

    def test_eccentricity(self):
        ecc, far = bfs_eccentricity(path_graph(7), 0)
        assert ecc == 6
        assert far == 6


class TestClustering:
    def test_complete_graph_is_one(self):
        assert np.isclose(estimate_clustering(complete_graph(10)), 1.0)

    def test_tree_is_zero(self):
        assert estimate_clustering(path_graph(20)) == 0.0

    def test_triangle(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert np.isclose(estimate_clustering(g), 1.0)


class TestStats:
    def test_grid_stats(self):
        stats = graph_stats(grid_2d(5, 5))
        assert stats.num_nodes == 25
        assert stats.num_edges == 40
        assert stats.max_degree == 4
        assert stats.weight_spread == 1.0
        assert "n=25" in stats.summary()

    def test_heavy_tail_visible(self):
        stats = graph_stats(barabasi_albert_graph(500, 3, seed=0))
        assert stats.max_degree > 3 * stats.average_degree

    def test_weight_spread(self):
        g = Graph.from_edges(3, [(0, 1, 0.1), (1, 2, 10.0)])
        assert np.isclose(graph_stats(g).weight_spread, 100.0)
