"""Tests for the threshold incomplete Cholesky (ICT) factorisation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cholesky.incomplete import CholeskyBreakdownError, ic0, ichol
from repro.cholesky.numeric import cholesky
from repro.cholesky.ordering import permute_symmetric
from repro.graphs.generators import fe_mesh_2d, grid_2d
from repro.graphs.laplacian import grounded_laplacian
from repro.linalg.pcg import ichol_preconditioner, pcg


class TestExactLimit:
    def test_zero_droptol_equals_complete_factor(self, spd_matrix):
        incomplete = ichol(spd_matrix, drop_tol=0.0, ordering="natural")
        complete = cholesky(spd_matrix, ordering="natural")
        assert np.allclose(
            incomplete.lower.toarray(), complete.lower.toarray(), atol=1e-9
        )

    def test_zero_droptol_with_ordering(self, spd_matrix):
        incomplete = ichol(spd_matrix, drop_tol=0.0, ordering="rcm")
        complete = cholesky(spd_matrix, ordering="rcm")
        assert np.allclose(
            incomplete.lower.toarray(), complete.lower.toarray(), atol=1e-9
        )


class TestDropping:
    def test_droptol_reduces_nnz(self, weighted_mesh):
        matrix, _ = grounded_laplacian(weighted_mesh, 1.0)
        exact = ichol(matrix, drop_tol=0.0, ordering="rcm")
        dropped = ichol(matrix, drop_tol=1e-2, ordering="rcm")
        assert dropped.nnz < exact.nnz

    def test_residual_scales_with_droptol(self):
        graph = grid_2d(10, 10)
        matrix, _ = grounded_laplacian(graph, 1.0)
        residuals = []
        for tol in (1e-1, 1e-2, 1e-3):
            result = ichol(matrix, drop_tol=tol, ordering="rcm")
            permuted = permute_symmetric(matrix, result.perm)
            residual = permuted - result.lower @ result.lower.T
            residuals.append(abs(residual).max())
        assert residuals[0] > residuals[1] > residuals[2]

    def test_m_matrix_sign_structure(self, weighted_mesh):
        """ICT of an SDD M-matrix keeps Lemma 1's sign structure."""
        matrix, _ = grounded_laplacian(weighted_mesh, 1.0)
        result = ichol(matrix, drop_tol=1e-3, ordering="amd")
        coo = result.lower.tocoo()
        diag_mask = coo.row == coo.col
        assert np.all(coo.data[diag_mask] > 0)
        assert np.all(coo.data[~diag_mask] <= 1e-12)

    def test_max_fill_cap(self, weighted_mesh):
        matrix, _ = grounded_laplacian(weighted_mesh, 1.0)
        result = ichol(matrix, drop_tol=0.0, max_fill=3, ordering="natural")
        per_column = np.diff(result.lower.indptr)
        assert per_column.max() <= 4  # diagonal + max_fill

    def test_invalid_droptol(self, spd_matrix):
        with pytest.raises(ValueError):
            ichol(spd_matrix, drop_tol=-1.0)


class TestBreakdownRecovery:
    def test_shift_retry_succeeds(self):
        """Aggressive dropping on an ill-conditioned SPD matrix can break
        down; the Manteuffel retry must still deliver a usable factor."""
        rng = np.random.default_rng(0)
        n = 40
        # nearly singular SPD matrix with strong off-diagonal coupling
        base = rng.normal(size=(n, n))
        spd = base @ base.T + 1e-4 * np.eye(n)
        matrix = sp.csc_matrix(spd)
        result = ichol(matrix, drop_tol=0.5, ordering="natural")
        assert result.lower.shape == (n, n)
        assert np.all(result.lower.diagonal() > 0)

    def test_missing_diagonal_raises(self):
        matrix = sp.csc_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(CholeskyBreakdownError):
            ichol(matrix, max_retries=0)


class TestPreconditioning:
    def test_ict_accelerates_pcg(self):
        graph = fe_mesh_2d(12, 12, seed=3)
        matrix, _ = grounded_laplacian(graph, 1.0)
        rng = np.random.default_rng(5)
        b = rng.normal(size=matrix.shape[0])
        plain = pcg(matrix, b, rtol=1e-8)
        factor = ichol(matrix, drop_tol=1e-2, ordering="rcm")
        preconditioned = pcg(
            matrix, b, preconditioner=ichol_preconditioner(factor), rtol=1e-8
        )
        assert preconditioned.converged
        assert preconditioned.iterations < plain.iterations

    def test_ic0_preconditioner(self):
        graph = grid_2d(9, 9)
        matrix, _ = grounded_laplacian(graph, 1.0)
        result = ic0(matrix, ordering="natural")
        # pattern is exactly the lower triangle of A
        assert result.nnz == sp.tril(matrix).nnz
        rng = np.random.default_rng(6)
        b = rng.normal(size=matrix.shape[0])
        solved = pcg(matrix, b, preconditioner=ichol_preconditioner(result), rtol=1e-8)
        assert solved.converged


def _reference_ic0_values(lower_pattern: sp.csc_matrix) -> np.ndarray:
    """The pre-vectorisation IC(0) sweep (dict probing), kept as the
    executable specification for the searchsorted regression test."""
    lower = lower_pattern.copy()
    lp, li, lx = lower.indptr, lower.indices, lower.data
    n = lower.shape[0]
    col_positions = {
        j: {int(li[t]): t for t in range(lp[j], lp[j + 1])} for j in range(n)
    }
    for j in range(n):
        start, end = lp[j], lp[j + 1]
        assert li[start] == j and lx[start] > 0
        diag = np.sqrt(lx[start])
        lx[start] = diag
        lx[start + 1:end] /= diag
        for t in range(start + 1, end):
            k = int(li[t])
            ljk = lx[t]
            positions = col_positions[k]
            for s in range(t, end):
                hit = positions.get(int(li[s]))
                if hit is not None:
                    lx[hit] -= ljk * lx[s]
    return lower.data


class TestRegressionVsReferenceSweeps:
    @pytest.mark.parametrize("ordering", ["natural", "amd"])
    def test_ic0_values_unchanged(self, weighted_mesh, ordering):
        """The searchsorted-vectorised IC(0) update performs the same
        subtractions in the same order as the old dict-probing loop — the
        factor values must be identical bit for bit."""
        from repro.cholesky.ordering import compute_ordering

        matrix, _ = grounded_laplacian(weighted_mesh, 1.0)
        perm = compute_ordering(sp.csc_matrix(matrix), method=ordering)
        result = ic0(matrix, perm=perm)
        pattern = sp.csc_matrix(
            sp.tril(permute_symmetric(sp.csc_matrix(matrix).astype(np.float64), perm))
        )
        pattern.sort_indices()
        expected = _reference_ic0_values(pattern)
        assert np.array_equal(result.lower.data, expected)

    def test_ict_leaf_columns_match_scalar_path(self):
        """Columns with no lower-numbered neighbour take the vectorised
        leaf batch, the rest the scalar sweep; with ``drop_tol=0`` the
        stitched-together factor must equal the dense Cholesky factor of
        the permuted matrix."""
        graph = fe_mesh_2d(9, 8, seed=13)
        matrix, _ = grounded_laplacian(graph, 1.0)
        result = ichol(matrix, drop_tol=0.0, ordering="amd")
        dense = np.linalg.cholesky(
            permute_symmetric(matrix, result.perm).toarray()
        )
        assert np.allclose(result.lower.toarray(), dense, atol=1e-9)

    def test_ict_column_layout_sorted_diag_first(self, weighted_mesh):
        """The arena assembly must deliver sorted CSC with the diagonal
        stored first in every column (Alg. 2 validates exactly that)."""
        matrix, _ = grounded_laplacian(weighted_mesh, 1.0)
        result = ichol(matrix, drop_tol=1e-3, ordering="amd")
        lower = result.lower
        n = lower.shape[0]
        assert lower.has_sorted_indices
        heads = lower.indices[lower.indptr[:-1]]
        assert np.array_equal(heads, np.arange(n))
        for j in range(n):
            col = lower.indices[lower.indptr[j]:lower.indptr[j + 1]]
            assert np.all(np.diff(col) > 0)


class TestDiagnostics:
    def test_fill_ratio(self, weighted_mesh):
        matrix, _ = grounded_laplacian(weighted_mesh, 1.0)
        result = ichol(matrix, drop_tol=1e-3, ordering="rcm")
        ratio = result.fill_ratio(matrix)
        assert ratio >= 1.0  # ICT keeps at least the original pattern scale

    def test_result_metadata(self, spd_matrix):
        result = ichol(spd_matrix, drop_tol=1e-3, ordering="natural")
        assert result.drop_tol == 1e-3
        assert result.n == spd_matrix.shape[0]
        assert result.shift == 0.0
