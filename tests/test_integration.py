"""End-to-end integration tests across module boundaries.

Each test exercises a realistic multi-module workflow: file round trips
through the reduction pipeline, estimators feeding the sparsifier,
cross-estimator agreement, and the full Table II protocol in miniature.
"""

import numpy as np
import pytest

from repro.apps.transient_flow import run_transient_flow
from repro.baselines.random_projection import RandomProjectionEffectiveResistance
from repro.core.effective_resistance import (
    CholInvEffectiveResistance,
    ExactEffectiveResistance,
)
from repro.graphs.generators import fe_mesh_2d
from repro.graphs.laplacian import laplacian
from repro.powergrid.dc import dc_analysis
from repro.powergrid.generators import synthetic_ibmpg_like
from repro.powergrid.spice import read_spice, write_spice
from repro.reduction.pipeline import PGReducer, ReductionConfig
from repro.reduction.sparsify import spielman_srivastava_sparsify


def test_spice_file_reduction_workflow(tmp_path):
    """generate → write SPICE → read → reduce → write → read → DC compare."""
    grid = synthetic_ibmpg_like(nx=12, ny=12, pad_pitch=6, seed=0)
    source_path = tmp_path / "grid.sp"
    write_spice(grid, source_path)

    loaded = read_spice(source_path)
    original_dc = dc_analysis(loaded)

    reducer = PGReducer(loaded, ReductionConfig(er_method="cholinv", seed=1))
    reduced = reducer.reduce()
    reduced_path = tmp_path / "reduced.sp"
    write_spice(reduced.grid, reduced_path)

    reloaded = read_spice(reduced_path)
    reduced_dc = dc_analysis(reloaded)

    # compare port voltages BY NAME through both file round trips
    for port in loaded.port_nodes():
        name = loaded.name_of(int(port))
        original_v = original_dc.voltage_of(name)
        reduced_v = reduced_dc.voltage_of(name)
        assert abs(original_v - reduced_v) < 5e-3  # volts


def test_estimators_agree_on_mesh():
    """All four ER estimators agree on a mesh within their error budgets."""
    graph = fe_mesh_2d(9, 9, seed=5).coalesce()
    pairs = graph.edge_array()
    exact = ExactEffectiveResistance(graph).query_pairs(pairs)
    cholinv = CholInvEffectiveResistance(graph, epsilon=1e-4, drop_tol=0.0).query_pairs(pairs)
    jl = RandomProjectionEffectiveResistance(
        graph, num_projections=4000, solver="splu", seed=0
    ).query_pairs(pairs)
    assert np.abs(cholinv / exact - 1).max() < 1e-2
    assert np.abs(jl / exact - 1).mean() < 5e-2


def test_alg3_scores_drive_sparsifier_as_well_as_exact():
    """Sparsifying with Alg. 3 resistances matches exact-score quality —
    the mechanism behind Table II's 'no loss of accuracy' claim."""
    from repro.graphs.generators import complete_graph

    graph = complete_graph(60)
    exact_scores = ExactEffectiveResistance(graph).all_edge_resistances()
    approx_scores = CholInvEffectiveResistance(
        graph, epsilon=1e-3, drop_tol=1e-3
    ).all_edge_resistances()

    lap = laplacian(graph).toarray()
    rng = np.random.default_rng(3)
    probes = rng.normal(size=(10, 60))
    probes -= probes.mean(axis=1, keepdims=True)

    def worst_distortion(scores, seed):
        result = spielman_srivastava_sparsify(
            graph, scores, sample_factor=10.0, seed=seed
        )
        lap_sparse = laplacian(result.graph).toarray()
        ratios = [
            (x @ lap_sparse @ x) / (x @ lap @ x) for x in probes
        ]
        return max(abs(r - 1.0) for r in ratios)

    exact_quality = np.mean([worst_distortion(exact_scores, s) for s in range(3)])
    approx_quality = np.mean([worst_distortion(approx_scores, s) for s in range(3)])
    assert approx_quality < exact_quality + 0.15


def test_transient_flow_all_methods_run_small():
    grid = synthetic_ibmpg_like(nx=10, ny=10, pad_pitch=5, transient=True, seed=2)
    for method in ("exact", "cholinv"):
        outcome = run_transient_flow(
            grid, ReductionConfig(er_method=method, seed=0), step=1e-11, num_steps=15
        )
        assert outcome.rel_pct < 10.0


def test_reduction_then_second_reduction_is_stable():
    """Reducing an already-reduced grid should keep ports intact and not
    blow up errors — a sanity check for idempotent-ish behaviour."""
    grid = synthetic_ibmpg_like(nx=14, ny=14, pad_pitch=6, seed=3)
    original = dc_analysis(grid)
    first = PGReducer(grid, ReductionConfig(er_method="cholinv", seed=1)).reduce()
    second = PGReducer(
        first.grid, ReductionConfig(er_method="cholinv", seed=2)
    ).reduce()
    solution = dc_analysis(second.grid)

    ports = grid.port_nodes()
    first_idx = first.reduced_index_of(ports)
    second_idx = second.reduced_index_of(first_idx)
    errors = np.abs(original.voltages[ports] - solution.voltages[second_idx])
    assert errors.mean() / original.max_drop() < 0.1
