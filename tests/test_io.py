"""Tests for edge-list and MatrixMarket IO round trips."""

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.io import (
    read_edgelist,
    read_matrix_market,
    write_edgelist,
    write_matrix_market,
)
from repro.graphs.laplacian import laplacian


def test_edgelist_round_trip(tmp_path, weighted_mesh):
    path = tmp_path / "mesh.txt"
    write_edgelist(weighted_mesh, path)
    back = read_edgelist(path)
    assert back.num_nodes == weighted_mesh.num_nodes
    assert back.num_edges == weighted_mesh.num_edges
    assert np.allclose(
        back.adjacency().toarray(), weighted_mesh.adjacency().toarray()
    )


def test_edgelist_unweighted(tmp_path, small_grid):
    path = tmp_path / "grid.txt"
    write_edgelist(small_grid, path, write_weights=False)
    back = read_edgelist(path)
    assert np.all(back.weights == 1.0)
    assert back.num_edges == small_grid.num_edges


def test_edgelist_skips_comments_and_self_loops(tmp_path):
    path = tmp_path / "raw.txt"
    path.write_text("# a comment\n0 1\n1 1\n1 2 3.5\n\n")
    g = read_edgelist(path)
    assert g.num_edges == 2  # the self loop is dropped
    assert np.allclose(np.sort(g.weights), [1.0, 3.5])


def test_edgelist_compacts_sparse_ids(tmp_path):
    path = tmp_path / "sparse_ids.txt"
    path.write_text("10 20\n20 30\n")
    g = read_edgelist(path)
    assert g.num_nodes == 3
    assert g.num_edges == 2


def test_edgelist_declared_nodes_preserves_ids_verbatim(tmp_path):
    """Regression: with num_nodes declared, in-range ids must not be
    remapped — edge (0, 5) in a 10-node graph used to silently become
    (0, 1), rewiring queries against the wrong vertices."""
    path = tmp_path / "gap_ids.txt"
    path.write_text("0 5\n")
    g = read_edgelist(path, num_nodes=10)
    assert g.num_nodes == 10
    assert (int(g.heads[0]), int(g.tails[0])) == (0, 5)


def test_edgelist_header_nodes_preserves_ids(tmp_path):
    path = tmp_path / "gap_header.txt"
    path.write_text("# nodes 8 edges 2\n1 3\n3 6\n")
    g = read_edgelist(path)
    assert g.num_nodes == 8
    assert sorted(zip(g.heads.tolist(), g.tails.tolist())) == [(1, 3), (3, 6)]


def test_edgelist_out_of_range_ids_still_compact(tmp_path):
    """Ids beyond the declared count cannot be preserved — fall back to
    compaction with at least the declared node count."""
    path = tmp_path / "overflow_ids.txt"
    path.write_text("0 99\n")
    g = read_edgelist(path, num_nodes=10)
    assert g.num_nodes == 10
    assert g.num_edges == 1
    assert int(g.tails.max()) < 10


def test_edgelist_round_trip_preserves_trailing_isolated_nodes(tmp_path):
    """The ``# nodes`` header must carry nodes no edge line witnesses."""
    g = Graph.from_edges(10, [(0, 1), (1, 2)])  # nodes 3..9 isolated
    path = tmp_path / "isolated.txt"
    write_edgelist(g, path)
    back = read_edgelist(path)
    assert back.num_nodes == 10
    assert back.num_edges == 2
    assert sorted(zip(back.heads.tolist(), back.tails.tolist())) == [(0, 1), (1, 2)]


def test_edgelist_round_trip_zero_edges(tmp_path):
    g = Graph.from_edges(5, [])
    path = tmp_path / "empty.txt"
    write_edgelist(g, path)
    assert read_edgelist(path).num_nodes == 5


def test_edgelist_snap_style_header(tmp_path):
    """Real SNAP headers (``# Nodes: N Edges: M``) declare the count too."""
    path = tmp_path / "snap.txt"
    path.write_text("# Nodes: 8 Edges: 2\n1 3\n3 6\n")
    g = read_edgelist(path)
    assert g.num_nodes == 8
    assert sorted(zip(g.heads.tolist(), g.tails.tolist())) == [(1, 3), (3, 6)]


def test_edgelist_malformed_header_ignored(tmp_path):
    path = tmp_path / "bad_header.txt"
    path.write_text("# nodes\n# nodes lots edges few\n0 1\n")
    g = read_edgelist(path)  # falls back to max-id inference
    assert g.num_nodes == 2
    assert g.num_edges == 1


def test_matrix_market_round_trip(tmp_path, weighted_mesh):
    path = tmp_path / "mesh.mtx"
    write_matrix_market(weighted_mesh, path)
    back = read_matrix_market(path)
    assert np.allclose(
        back.adjacency().toarray(), weighted_mesh.adjacency().toarray()
    )


def test_matrix_market_reads_laplacian(tmp_path, small_grid):
    """UF-style SDD matrices (negative off-diagonals) load as graphs."""
    import scipy.io

    path = tmp_path / "lap.mtx"
    scipy.io.mmwrite(str(path), laplacian(small_grid))
    back = read_matrix_market(path)
    assert back.num_edges == small_grid.num_edges
    assert np.allclose(
        back.adjacency().toarray(), small_grid.adjacency().toarray()
    )


def test_write_edgelist_header(tmp_path):
    g = Graph.from_edges(3, [(0, 1), (1, 2)])
    path = tmp_path / "g.txt"
    write_edgelist(g, path)
    first = path.read_text().splitlines()[0]
    assert "nodes 3" in first
    assert "edges 2" in first
