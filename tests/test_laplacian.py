"""Tests for incidence/Laplacian assembly and grounding (paper Section II-A)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs.generators import fe_mesh_2d, grid_2d
from repro.graphs.graph import Graph
from repro.graphs.laplacian import (
    grounded_laplacian,
    incidence_matrix,
    is_sdd_m_matrix,
    laplacian,
    laplacian_from_grounded,
    laplacian_quadratic_form,
    weight_matrix,
)


class TestIncidence:
    def test_shape_and_entries(self, tiny_path):
        b = incidence_matrix(tiny_path)
        assert b.shape == (4, 5)
        dense = b.toarray()
        for e, (u, v) in enumerate(tiny_path.edge_array()):
            assert dense[e, u] == 1.0
            assert dense[e, v] == -1.0
            assert np.count_nonzero(dense[e]) == 2

    def test_rows_sum_to_zero(self, weighted_mesh):
        b = incidence_matrix(weighted_mesh)
        assert np.allclose(np.asarray(b.sum(axis=1)).ravel(), 0.0)


class TestLaplacian:
    def test_equals_btwb(self, weighted_mesh):
        """Direct assembly must equal the Eq. (2) triple product."""
        b = incidence_matrix(weighted_mesh)
        w = weight_matrix(weighted_mesh)
        reference = (b.T @ w @ b).toarray()
        assert np.allclose(laplacian(weighted_mesh).toarray(), reference)

    def test_row_sums_zero(self, weighted_mesh):
        lap = laplacian(weighted_mesh)
        assert np.allclose(np.asarray(lap.sum(axis=1)).ravel(), 0.0, atol=1e-12)

    def test_positive_semidefinite(self, weighted_mesh):
        eigenvalues = np.linalg.eigvalsh(laplacian(weighted_mesh).toarray())
        assert eigenvalues.min() > -1e-10

    def test_singular(self, small_grid):
        lap = laplacian(small_grid).toarray()
        assert abs(np.linalg.det(lap)) < 1e-6

    def test_quadratic_form_matches_matrix(self, weighted_mesh):
        rng = np.random.default_rng(0)
        x = rng.normal(size=weighted_mesh.num_nodes)
        direct = laplacian_quadratic_form(weighted_mesh, x)
        via_matrix = float(x @ (laplacian(weighted_mesh) @ x))
        assert np.isclose(direct, via_matrix)


class TestGrounding:
    def test_grounded_is_nonsingular(self, small_grid):
        matrix, grounds = grounded_laplacian(small_grid, 1.0)
        assert grounds.shape == (1,)
        assert np.linalg.cond(matrix.toarray()) < 1e8

    def test_one_ground_per_component(self, two_components):
        _, grounds = grounded_laplacian(two_components, 1.0)
        assert grounds.shape == (2,)
        assert grounds[0] < 3 <= grounds[1]

    def test_explicit_ground_nodes(self, small_grid):
        matrix, grounds = grounded_laplacian(small_grid, 2.0, ground_nodes=np.array([5]))
        assert np.array_equal(grounds, [5])
        lap = laplacian(small_grid)
        assert np.isclose(matrix[5, 5] - lap[5, 5], 2.0)

    def test_round_trip(self, weighted_mesh):
        matrix, grounds = grounded_laplacian(weighted_mesh, 3.0)
        restored = laplacian_from_grounded(matrix, grounds, 3.0)
        assert np.allclose(restored.toarray(), laplacian(weighted_mesh).toarray())

    def test_requires_positive_ground(self, small_grid):
        with pytest.raises(ValueError):
            grounded_laplacian(small_grid, 0.0)

    def test_grounded_is_sdd_m_matrix(self, weighted_mesh):
        matrix, _ = grounded_laplacian(weighted_mesh, 1.0)
        assert is_sdd_m_matrix(matrix)


class TestSddCheck:
    def test_rejects_positive_offdiagonal(self):
        matrix = sp.csc_matrix(np.array([[2.0, 1.0], [1.0, 2.0]]))
        assert not is_sdd_m_matrix(matrix)

    def test_rejects_non_dominant(self):
        matrix = sp.csc_matrix(np.array([[1.0, -2.0], [-2.0, 1.0]]))
        assert not is_sdd_m_matrix(matrix)

    def test_accepts_laplacian(self, small_grid):
        assert is_sdd_m_matrix(laplacian(small_grid))
