"""Tests for MNA assembly and DC analysis against hand-computed circuits."""

import numpy as np
import pytest

from repro.powergrid.dc import dc_analysis
from repro.powergrid.generators import synthetic_ibmpg_like
from repro.powergrid.mna import build_mna
from repro.powergrid.netlist import GROUND, PowerGrid


def voltage_divider():
    """1.8 V pad — 1Ω — mid — 1Ω — ground shunt: classic divider."""
    pg = PowerGrid()
    pad, mid = pg.node("pad"), pg.node("mid")
    pg.add_resistor(pad, mid, 1.0)
    pg.add_resistor(mid, GROUND, 1.0)
    pg.add_vsource(pad, 1.8)
    return pg, pad, mid


class TestMNA:
    def test_divider_matrices(self):
        pg, pad, mid = voltage_divider()
        system = build_mna(pg)
        assert np.array_equal(system.pads, [pad])
        assert np.array_equal(system.unknown, [mid])
        dense = system.conductance.toarray()
        assert np.allclose(dense, [[1.0, -1.0], [-1.0, 2.0]])

    def test_injected_currents_sign(self):
        pg = PowerGrid()
        a = pg.node("a")
        pg.add_vsource(pg.node("p"), 1.0)
        pg.add_isource(a, 0.25)
        system = build_mna(pg)
        rhs = system.injected_currents()
        assert rhs[a] == -0.25  # loads LEAVE the node

    def test_coupling_capacitor_stamps(self):
        pg = PowerGrid()
        a, b = pg.node("a"), pg.node("b")
        pg.add_resistor(a, b, 1.0)
        pg.add_capacitor(a, 2e-12, b=b)
        pg.add_vsource(a, 1.0)
        system = build_mna(pg)
        cap = system.capacitance.toarray()
        assert np.allclose(cap, [[2e-12, -2e-12], [-2e-12, 2e-12]])

    def test_ground_capacitor_is_diagonal(self):
        pg = PowerGrid()
        a = pg.node("a")
        pg.add_vsource(pg.node("p"), 1.0)
        pg.add_capacitor(a, 5e-13)
        system = build_mna(pg)
        cap = system.capacitance.toarray()
        assert cap[a, a] == 5e-13
        assert np.count_nonzero(cap) == 1

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            build_mna(PowerGrid())


class TestDC:
    def test_divider_voltage(self):
        pg, pad, mid = voltage_divider()
        result = dc_analysis(pg)
        assert np.isclose(result.voltages[pad], 1.8)
        assert np.isclose(result.voltages[mid], 0.9)

    def test_ir_drop_two_segments(self):
        """pad —1Ω— a —1Ω— b with 0.1 A load at b: v_a=1.7, v_b=1.6."""
        pg = PowerGrid()
        pad, a, b = pg.node("pad"), pg.node("a"), pg.node("b")
        pg.add_resistor(pad, a, 1.0)
        pg.add_resistor(a, b, 1.0)
        pg.add_vsource(pad, 1.8)
        pg.add_isource(b, 0.1)
        result = dc_analysis(pg)
        assert np.isclose(result.voltages[a], 1.7)
        assert np.isclose(result.voltages[b], 1.6)
        assert np.isclose(result.max_drop(), 0.2)
        assert np.isclose(result.voltage_of("b"), 1.6)

    def test_superposition(self):
        """DC solves are linear in the load currents."""
        pg, pad, mid = voltage_divider()
        pg.add_isource(mid, 0.1)
        single = dc_analysis(pg)
        pg.isources[0].dc = 0.2
        double = dc_analysis(pg)
        drop_single = 0.9 - single.voltages[mid]
        drop_double = 0.9 - double.voltages[mid]
        assert np.isclose(drop_double, 2 * drop_single)

    def test_gnd_net_bounce_is_positive_drop(self):
        grid = synthetic_ibmpg_like(nx=10, ny=10, seed=1)
        result = dc_analysis(grid)
        drops = result.drops()
        assert np.all(drops >= -1e-9)
        assert result.max_drop() > 0

    def test_kcl_at_internal_node(self):
        """Currents into every unknown node sum to the injected load."""
        grid = synthetic_ibmpg_like(nx=8, ny=8, seed=2, nets=("vdd",))
        result = dc_analysis(grid)
        system = result.system
        residual = system.conductance @ result.voltages - system.injected_currents()
        assert np.allclose(residual[system.unknown], 0.0, atol=1e-9)
