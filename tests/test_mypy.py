"""Type-check gate for the strict islands (``repro.analysis``, engine core).

mypy is not part of the runtime dependency set and is absent from the
offline dev image, so this test self-skips when it is missing; the CI
``lint`` job installs a pinned mypy and runs there.  Keeping the gate as
a pytest test means `pytest tests/test_mypy.py` and CI agree on exactly
which files are strict.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO_ROOT = Path(__file__).resolve().parents[1]

STRICT_TARGETS = [
    "src/repro/analysis",
    "src/repro/core/engine.py",
    "src/repro/service/executor.py",
    "src/repro/estimators",
]


def test_strict_islands_type_check():
    env = dict(os.environ)
    env["MYPYPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO_ROOT / "pyproject.toml"),
            *STRICT_TARGETS,
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    assert result.returncode == 0, result.stdout + result.stderr
