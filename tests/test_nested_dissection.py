"""Tests for the nested-dissection ordering."""

import numpy as np

from repro.cholesky.depth import max_depth
from repro.cholesky.nested_dissection import nested_dissection_ordering
from repro.cholesky.numeric import cholesky
from repro.cholesky.ordering import compute_ordering
from repro.graphs.generators import grid_2d, fe_mesh_2d
from repro.graphs.laplacian import grounded_laplacian


def test_is_a_permutation():
    graph = fe_mesh_2d(9, 9, seed=0)
    matrix, _ = grounded_laplacian(graph, 1.0)
    perm = nested_dissection_ordering(matrix, leaf_size=16)
    assert np.array_equal(np.sort(perm), np.arange(matrix.shape[0]))


def test_dispatch_through_compute_ordering():
    graph = grid_2d(8, 8)
    matrix, _ = grounded_laplacian(graph, 1.0)
    perm = compute_ordering(matrix, "nested_dissection")
    assert np.array_equal(np.sort(perm), np.arange(64))


def test_reduces_fill_versus_natural_on_grid():
    graph = grid_2d(20, 20)
    matrix, _ = grounded_laplacian(graph, 1.0)
    nd = cholesky(matrix, ordering="nested_dissection").nnz
    natural = cholesky(matrix, ordering="natural").nnz
    assert nd < natural


def test_depth_beats_rcm_on_grid():
    """ND separator trees are shallow; RCM's band profile is a long chain."""
    graph = grid_2d(24, 24)
    matrix, _ = grounded_laplacian(graph, 1.0)
    nd_depth = max_depth(cholesky(matrix, ordering="nested_dissection").lower)
    rcm_depth = max_depth(cholesky(matrix, ordering="rcm").lower)
    assert nd_depth < rcm_depth


def test_small_matrix_falls_back_to_minimum_degree():
    graph = grid_2d(4, 4)
    matrix, _ = grounded_laplacian(graph, 1.0)
    perm = nested_dissection_ordering(matrix, leaf_size=100)
    assert np.array_equal(np.sort(perm), np.arange(16))


def test_factorization_correct_under_nd():
    graph = fe_mesh_2d(7, 7, seed=1)
    matrix, _ = grounded_laplacian(graph, 1.0)
    factor = cholesky(matrix, ordering="nested_dissection")
    rng = np.random.default_rng(2)
    b = rng.normal(size=matrix.shape[0])
    x = factor.solve(b)
    assert np.allclose(matrix @ x, b, atol=1e-8)
