"""Tests for the PowerGrid netlist model."""

import numpy as np
import pytest

from repro.powergrid.netlist import GROUND, PowerGrid
from repro.powergrid.waveforms import PulseWaveform


@pytest.fixture
def tiny_grid():
    """Three nodes in a row, pad on the left, load on the right."""
    pg = PowerGrid()
    a, b, c = pg.node("a"), pg.node("b"), pg.node("c")
    pg.add_resistor(a, b, 1.0)
    pg.add_resistor(b, c, 2.0)
    pg.add_vsource(a, 1.8)
    pg.add_isource(c, 0.1)
    return pg


class TestNodes:
    def test_node_creation_is_idempotent(self):
        pg = PowerGrid()
        assert pg.node("x") == pg.node("x") == 0
        assert pg.num_nodes == 1

    def test_name_round_trip(self, tiny_grid):
        assert tiny_grid.name_of(tiny_grid.index_of("b")) == "b"

    def test_unknown_name_raises(self, tiny_grid):
        with pytest.raises(KeyError):
            tiny_grid.index_of("zzz")


class TestElements:
    def test_resistor_to_ground_becomes_shunt(self):
        pg = PowerGrid()
        a = pg.node("a")
        pg.add_resistor(a, GROUND, 4.0)
        assert pg.num_resistors == 0
        assert pg.shunt_node == [a]
        assert np.isclose(pg.shunt_siemens[0], 0.25)

    def test_rejects_bad_values(self):
        pg = PowerGrid()
        a, b = pg.node("a"), pg.node("b")
        with pytest.raises(ValueError):
            pg.add_resistor(a, b, 0.0)
        with pytest.raises(ValueError):
            pg.add_resistor(a, a, 1.0)
        with pytest.raises(ValueError):
            pg.add_capacitor(a, -1e-12)
        with pytest.raises(ValueError):
            pg.add_vsource(GROUND, 1.0)

    def test_current_source_waveform(self):
        pg = PowerGrid()
        a = pg.node("a")
        wf = PulseWaveform(low=0.0, high=1.0, rise=0.1, width=0.3, fall=0.1, period=1.0)
        pg.add_isource(a, 0.0, waveform=wf)
        assert pg.isources[0].current_at(0.2) == 1.0

    def test_current_source_dc(self, tiny_grid):
        assert tiny_grid.isources[0].current_at(123.0) == 0.1


class TestDerivedViews:
    def test_port_nodes(self, tiny_grid):
        assert np.array_equal(tiny_grid.port_nodes(), [0, 2])

    def test_pad_nodes_and_voltages(self, tiny_grid):
        assert np.array_equal(tiny_grid.pad_nodes(), [0])
        pinned = tiny_grid.pad_voltage_vector()
        assert pinned[0] == 1.8
        assert np.isnan(pinned[1])

    def test_dc_load_vector(self, tiny_grid):
        loads = tiny_grid.dc_load_vector()
        assert np.allclose(loads, [0.0, 0.0, 0.1])

    def test_to_graph(self, tiny_grid):
        graph = tiny_grid.to_graph()
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert np.allclose(np.sort(graph.weights), [0.5, 1.0])

    def test_total_capacitance(self):
        pg = PowerGrid()
        a = pg.node("a")
        pg.add_capacitor(a, 1e-12)
        pg.add_capacitor(a, 2e-12)
        assert np.isclose(pg.total_capacitance(), 3e-12)
