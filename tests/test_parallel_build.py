"""Tests for the parallel engine-build pipeline (``build_workers``).

Covers the three layers the build knob threads through:

* the level-parallel blocked Alg. 2 kernel — parametrised bit-identity of
  parallel vs serial runs across mode, epsilon, complete/incomplete
  factors and worker counts (chunking is forced with a tiny chunk target
  so the parallel code path actually executes on test-sized graphs);
* the component-sharded engine — parallel eager builds, ``warm_up`` on a
  lazy engine, and a thread hammer mixing concurrent ``warm_up`` calls
  with live queries (no shard may ever build twice);
* the surrounding plumbing — ``EngineConfig`` validation, persistence
  round-trip, ``refresh_after_edge_update(build_workers=...)`` and the
  CLI flag.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.core.approx_inverse as approx_inverse_module
from repro.cholesky.incomplete import ichol
from repro.cholesky.numeric import cholesky
from repro.core.approx_inverse import approximate_inverse
from repro.core.effective_resistance import CholInvEffectiveResistance
from repro.core.engine import EngineConfig, build_engine
from repro.core.sharded import ShardedEngine
from repro.graphs.generators import fe_mesh_2d, grid_2d
from repro.graphs.graph import Graph
from repro.graphs.laplacian import grounded_laplacian
from repro.service import ResistanceService


@pytest.fixture
def force_chunking(monkeypatch):
    """Shrink the chunk target so test-sized levels split and fan out."""
    monkeypatch.setattr(approx_inverse_module, "_CHUNK_TARGET_NNZ", 64)


def _factor(kind: str):
    graph = fe_mesh_2d(12, 11, seed=3)
    matrix, _ = grounded_laplacian(graph, 1.0)
    if kind == "complete":
        return cholesky(matrix, ordering="amd").lower
    return ichol(matrix, drop_tol=1e-3, ordering="amd").lower


def _assert_same_csc(a, b):
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.data, b.data)


class TestParallelKernelBitIdentity:
    @pytest.mark.parametrize("kind", ["complete", "incomplete"])
    @pytest.mark.parametrize("mode", ["blocked", "reference"])
    @pytest.mark.parametrize("epsilon", [0.0, 1e-3, 1e-1])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_matches_serial(
        self, force_chunking, kind, mode, epsilon, workers
    ):
        lower = _factor(kind)
        serial, serial_stats = approximate_inverse(
            lower, epsilon=epsilon, mode=mode, build_workers=1
        )
        parallel, parallel_stats = approximate_inverse(
            lower, epsilon=epsilon, mode=mode, build_workers=workers
        )
        _assert_same_csc(serial, parallel)
        assert serial_stats.nnz == parallel_stats.nnz
        assert serial_stats.columns_truncated == parallel_stats.columns_truncated
        assert serial_stats.columns_kept_whole == parallel_stats.columns_kept_whole

    def test_chunked_serial_matches_unchunked_decisions(self, force_chunking):
        """Chunking may regroup the vectorised scans, but the truncation
        decisions must match the per-column reference kernel exactly."""
        lower = _factor("complete")
        chunked, _ = approximate_inverse(lower, epsilon=1e-3, build_workers=4)
        reference, _ = approximate_inverse(lower, epsilon=1e-3, mode="reference")
        assert np.array_equal(chunked.indices, reference.indices)
        assert np.allclose(chunked.data, reference.data, rtol=1e-12, atol=0.0)

    def test_default_chunk_target_also_bit_identical(self):
        """Without forced chunking small graphs run unchunked — worker
        counts must still be a no-op on the result."""
        lower = _factor("incomplete")
        serial, _ = approximate_inverse(lower, epsilon=1e-3, build_workers=1)
        parallel, _ = approximate_inverse(lower, epsilon=1e-3, build_workers=4)
        _assert_same_csc(serial, parallel)

    def test_invalid_workers_rejected(self):
        lower = _factor("complete")
        with pytest.raises(ValueError):
            approximate_inverse(lower, build_workers=0)


class TestEngineBuildWorkers:
    def test_cholinv_engine_bit_identical(self, force_chunking):
        graph = grid_2d(14, 14, jitter=0.3, seed=2)
        serial = CholInvEffectiveResistance(graph, build_workers=1)
        parallel = CholInvEffectiveResistance(graph, build_workers=3)
        _assert_same_csc(serial.z_tilde, parallel.z_tilde)
        pairs = np.column_stack([np.arange(0, 50), np.arange(50, 100)])
        assert np.array_equal(serial.query_pairs(pairs), parallel.query_pairs(pairs))

    def test_config_validates_workers(self):
        with pytest.raises(ValueError):
            EngineConfig(build_workers=0)

    def test_persistence_round_trips_build_workers(self, tmp_path, force_chunking):
        graph = grid_2d(10, 10, jitter=0.3, seed=4)
        engine = build_engine(graph, EngineConfig(build_workers=3))
        from repro.core.persistence import load_engine

        restored = load_engine(engine.save(tmp_path / "engine.npz"))
        assert restored.config.build_workers == 3
        assert restored.build_workers == 3
        _assert_same_csc(engine.z_tilde, restored.z_tilde)

    def test_refresh_accepts_build_workers(self):
        graph = grid_2d(7, 7, jitter=0.3, seed=5)
        service = ResistanceService(graph)
        before = service.query(0, 10)
        service.refresh_after_edge_update(
            edges=[(0, 10)], weights=[2.0], build_workers=2
        )
        assert service.config.build_workers == 2
        assert service.query(0, 10) < before  # extra conductance added
        with pytest.raises(ValueError):
            service.refresh_after_edge_update(edges=[(0, 1)], build_workers=0)
        assert service.config.build_workers == 2  # rejected call is a no-op

    def test_failed_refresh_does_not_adopt_build_workers(self, monkeypatch):
        """A refresh whose rebuild raises must not change how future
        refreshes build — the worker count is adopted with its engine."""
        import repro.service.resistance_service as service_module

        graph = grid_2d(6, 6, jitter=0.3, seed=8)
        service = ResistanceService(graph)

        def exploding_build(graph, config):
            raise RuntimeError("injected build failure")

        monkeypatch.setattr(service_module, "build_engine", exploding_build)
        with pytest.raises(RuntimeError):
            service.refresh_after_edge_update(
                edges=[(0, 1)], weights=[1.0], build_workers=4
            )
        assert service.config.build_workers == 1
        monkeypatch.undo()
        service.refresh_after_edge_update(
            edges=[(0, 1)], weights=[1.0], build_workers=4
        )
        assert service.config.build_workers == 4


def _multi_component(components: int = 6, side: int = 7) -> Graph:
    return Graph.disjoint_union(
        [grid_2d(side, side, jitter=0.3, seed=s) for s in range(components)]
    )


def _probe_pairs(graph: Graph, seed: int = 9) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, graph.num_nodes, size=(256, 2))


class TestShardedParallelBuild:
    def test_eager_parallel_build_matches_serial(self):
        graph = _multi_component()
        serial = ShardedEngine(graph, EngineConfig(sharded=True, build_workers=1))
        parallel = ShardedEngine(graph, EngineConfig(sharded=True, build_workers=4))
        assert parallel.shards_built == serial.shards_built == 6
        pairs = _probe_pairs(graph)
        assert np.array_equal(serial.query_pairs(pairs), parallel.query_pairs(pairs))
        for sub_s, sub_p in zip(serial._engines, parallel._engines):
            _assert_same_csc(sub_s.z_tilde, sub_p.z_tilde)

    def test_warm_up_builds_pending_shards(self):
        graph = _multi_component()
        lazy = ShardedEngine(
            graph, EngineConfig(sharded=True, lazy_shards=True, build_workers=3)
        )
        assert lazy.shards_built == 0
        with pytest.raises(ValueError):
            lazy.warm_up(workers=0)
        assert lazy.warm_up() == 6
        assert lazy.shards_built == 6
        assert lazy.warm_up() == 0  # already warm
        with pytest.raises(ValueError):
            lazy.warm_up(workers=0)  # invalid even when already warm

    def test_warm_up_skips_singletons(self):
        graph = Graph.from_edges(5, [(0, 1), (1, 2)])  # nodes 3, 4 isolated
        lazy = ShardedEngine(graph, EngineConfig(sharded=True, lazy_shards=True))
        assert lazy.warm_up(workers=2) == 1
        assert lazy.shards_built == 1
        assert lazy.query(3, 4) == float("inf")
        assert lazy.query(0, 2) > 0.0

    def test_warm_up_query_thread_hammer(self, monkeypatch):
        """Concurrent warm_up + queries: correct answers, one build per shard."""
        graph = _multi_component(components=8, side=6)
        reference = ShardedEngine(graph, EngineConfig(sharded=True))
        pairs = _probe_pairs(graph)
        expected = reference.query_pairs(pairs)

        # every shard build extracts its subgraph exactly once (under the
        # shard's build lock), and the member list identifies the shard —
        # so counting subgraph extractions per smallest member catches a
        # duplicate build of a *specific* shard, not just a global excess
        build_counts: "dict[int, int]" = {}
        count_lock = threading.Lock()
        real_subgraph = Graph.subgraph

        def counting_subgraph(self, nodes, *args, **kwargs):
            with count_lock:
                shard_key = int(np.min(np.asarray(nodes)))
                build_counts[shard_key] = build_counts.get(shard_key, 0) + 1
            return real_subgraph(self, nodes, *args, **kwargs)

        monkeypatch.setattr(Graph, "subgraph", counting_subgraph)
        lazy = ShardedEngine(
            graph, EngineConfig(sharded=True, lazy_shards=True, build_workers=2)
        )

        results: "list[np.ndarray | None]" = [None] * 8
        errors: "list[BaseException]" = []
        start = threading.Barrier(8)

        def worker(i: int):
            try:
                start.wait()
                if i % 2 == 0:
                    lazy.warm_up(workers=2)
                results[i] = lazy.query_pairs(pairs)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        assert lazy.shards_built == 8
        for result in results:
            assert result is not None
            assert np.array_equal(result, expected)
        # the per-shard locks must have prevented every duplicate build
        assert len(build_counts) == 8
        assert all(count == 1 for count in build_counts.values()), build_counts


class TestCLIBuildWorkers:
    def test_er_accepts_build_workers(self, tmp_path):
        from repro.cli import main

        serial = tmp_path / "serial.csv"
        parallel = tmp_path / "parallel.csv"
        main(["er", "--generator", "grid2d:6x6", "--output", str(serial)])
        code = main([
            "er", "--generator", "grid2d:6x6", "--build-workers", "2",
            "--output", str(parallel),
        ])
        assert code == 0
        assert serial.read_text() == parallel.read_text()

    def test_service_help_mentions_build_workers(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["service", "--help"])
        assert "--build-workers" in capsys.readouterr().out
