"""Tests for the multilevel partitioner and node-role classification."""

import numpy as np
import pytest

from repro.graphs.generators import barabasi_albert_graph, grid_2d, path_graph
from repro.partition.coarsen import coarsen_once, coarsen_to, heavy_edge_matching
from repro.partition.interface import (
    NodeRole,
    classify_nodes,
    edge_cut,
    partition_graph,
    partition_quality,
)
from repro.partition.multilevel import multilevel_bisection, multilevel_kway
from repro.partition.refine import bisection_gains, refine_bisection
from repro.utils.rng import ensure_rng


class TestCoarsening:
    def test_matching_is_symmetric(self):
        g = grid_2d(10, 10)
        match = heavy_edge_matching(g, np.ones(100), ensure_rng(0))
        for v, m in enumerate(match):
            assert match[m] == v  # partner-of-partner is self

    def test_coarsen_preserves_mass(self):
        g = grid_2d(8, 8)
        level = coarsen_once(g, np.ones(64), ensure_rng(1))
        assert np.isclose(level.node_weights.sum(), 64.0)
        assert level.graph.num_nodes < 64

    def test_coarsen_to_target(self):
        g = grid_2d(20, 20)
        levels = coarsen_to(g, 50, seed=2)
        assert levels[-1].graph.num_nodes <= max(50, int(0.9 * 400))
        assert np.isclose(levels[-1].node_weights.sum(), 400.0)

    def test_mapping_composes(self):
        g = grid_2d(10, 10)
        levels = coarsen_to(g, 30, seed=3)
        mapping = np.arange(100)
        for level in levels:
            mapping = level.fine_to_coarse[mapping]
        assert mapping.max() < levels[-1].graph.num_nodes


class TestRefinement:
    def test_gains_definition(self):
        g = path_graph(4)
        side = np.array([False, False, True, True])
        gains = bisection_gains(g, side)
        # moving node 1 or 2 just shifts the single cut edge: gain 0 at the
        # boundary, negative inside
        assert gains[1] == 0.0
        assert gains[2] == 0.0
        assert gains[0] < 0 and gains[3] < 0

    def test_refinement_improves_bad_cut(self):
        g = grid_2d(8, 8)
        rng = ensure_rng(4)
        side = rng.random(64) < 0.5  # random cut: terrible
        before = edge_cut(g, side.astype(np.int64))
        refined = refine_bisection(g, side, np.ones(64))
        after = edge_cut(g, refined.astype(np.int64))
        assert after < before

    def test_refinement_respects_balance(self):
        g = grid_2d(8, 8)
        side = np.zeros(64, dtype=bool)
        side[:32] = True
        refined = refine_bisection(g, side, np.ones(64), balance_tolerance=0.1)
        share = refined.sum() / 64
        assert 0.4 - 1e-9 <= share <= 0.6 + 1e-9


class TestKway:
    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_blocks_balanced(self, k):
        g = grid_2d(16, 16)
        labels = multilevel_kway(g, k, seed=5)
        quality = partition_quality(g, labels)
        assert quality.num_blocks == k
        assert quality.block_sizes.min() > 0
        assert quality.imbalance < 1.6

    def test_cut_beats_random(self):
        g = grid_2d(16, 16)
        smart = partition_graph(g, 4, method="multilevel", seed=6)
        random = partition_graph(g, 4, method="random", seed=6)
        assert edge_cut(g, smart) < 0.5 * edge_cut(g, random)

    def test_single_block(self):
        g = grid_2d(4, 4)
        labels = partition_graph(g, 1)
        assert np.all(labels == 0)

    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_more_blocks_than_nodes(self, k):
        """Regression: asking a tiny graph for many blocks used to recurse
        onto an empty node set and crash building a 0-node subgraph."""
        from repro.graphs.graph import Graph

        g = Graph.from_edges(2, [(0, 1)])
        labels = multilevel_kway(g, k, seed=0)
        assert labels.shape == (2,)
        assert labels.min() >= 0
        assert labels.max() < k

    def test_irregular_graph(self):
        g = barabasi_albert_graph(400, 3, seed=7)
        labels = multilevel_kway(g, 4, seed=8)
        sizes = np.bincount(labels, minlength=4)
        assert sizes.min() > 0

    def test_bisection_target_fraction(self):
        g = grid_2d(12, 12)
        side = multilevel_bisection(g, target_fraction=0.25, seed=9)
        share = side.sum() / 144
        assert 0.1 < share < 0.45


class TestGeometric:
    def test_balanced_stripes(self):
        g = grid_2d(10, 10)
        coords = np.array([(r, c) for r in range(10) for c in range(10)], dtype=float)
        labels = partition_graph(g, 4, method="geometric", coords=coords)
        sizes = np.bincount(labels, minlength=4)
        assert sizes.max() - sizes.min() <= 1

    def test_requires_coords(self):
        g = grid_2d(4, 4)
        with pytest.raises(ValueError, match="coords"):
            partition_graph(g, 2, method="geometric")


class TestClassification:
    def test_roles_partition_nodes(self):
        g = grid_2d(8, 8)
        labels = partition_graph(g, 4, seed=10)
        ports = np.array([0, 10, 63])
        roles = classify_nodes(g, labels, ports)
        assert np.all(roles[ports] == int(NodeRole.PORT))
        crossing = labels[g.heads] != labels[g.tails]
        boundary = np.unique(np.concatenate([g.heads[crossing], g.tails[crossing]]))
        non_port_boundary = np.setdiff1d(boundary, ports)
        assert np.all(roles[non_port_boundary] == int(NodeRole.INTERFACE))

    def test_interior_nodes_have_no_crossing_edges(self):
        g = grid_2d(10, 10)
        labels = partition_graph(g, 5, seed=11)
        roles = classify_nodes(g, labels, np.array([0]))
        interior = np.flatnonzero(roles == int(NodeRole.INTERIOR))
        crossing = labels[g.heads] != labels[g.tails]
        touched = np.unique(np.concatenate([g.heads[crossing], g.tails[crossing]]))
        assert np.intersect1d(interior, touched).size == 0

    def test_unknown_method(self):
        g = grid_2d(4, 4)
        with pytest.raises(ValueError, match="unknown partition"):
            partition_graph(g, 2, method="zzz")
