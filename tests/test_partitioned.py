"""Within-component separator sharding (repro.core.partitioned).

Covers the plan layer (structure, determinism, fold edge cases), the
Schur-complement cross-region query path (exactness against dense
reference answers on grids / power-law graphs / SBMs), lazy builds under
a concurrency hammer, persistence round-trips, planner routing of mixed
batches, and the separator-aware partition diagnostics.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.engine import EngineConfig, build_engine
from repro.core.partitioned import (
    PartitionedEngine,
    ShardPlan,
    component_plan,
    make_plan,
    separator_plan,
)
from repro.core.persistence import load_engine
from repro.core.sharded import ShardedEngine
from repro.graphs.components import largest_component
from repro.graphs.generators import (
    barabasi_albert_graph,
    grid_2d,
    path_graph,
    stochastic_block_model,
)
from repro.graphs.graph import Graph
from repro.partition.interface import (
    SeparatorQuality,
    classify_nodes,
    edge_cut,
    partition_quality,
    separator_quality,
)
from repro.service.planner import QueryPlanner


SEPARATOR_CONFIG = EngineConfig(
    method="exact", shard_strategy="separator", max_shard_nodes=120
)


def _sbm_component() -> Graph:
    graph = stochastic_block_model(
        [90, 90, 90], p_in=0.15, p_out=0.004, weight_low=0.5,
        weight_high=2.0, seed=7,
    )
    big, _ = largest_component(graph)
    return big


def _reference(graph: Graph):
    return build_engine(graph, EngineConfig(method="exact"))


def _probe_pairs(engine: PartitionedEngine, rng: np.random.Generator,
                 count: int = 400) -> np.ndarray:
    """Pairs biased to hit every routing class the plan produces."""
    n = engine.n
    pairs = [np.column_stack([rng.integers(0, n, count),
                              rng.integers(0, n, count)])]
    sep = engine.plan.separator
    if sep.size:
        # separator-separator and region-separator endpoints
        pairs.append(np.column_stack([rng.choice(sep, 50),
                                      rng.choice(sep, 50)]))
        pairs.append(np.column_stack([rng.choice(sep, 50),
                                      rng.integers(0, n, 50)]))
    return np.concatenate(pairs)


# ----------------------------------------------------------------------
# plan layer
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_component_plan_matches_components(self, two_components):
        plan = component_plan(two_components)
        assert plan.strategy == "component"
        assert plan.num_shards == 2
        assert plan.separator.size == 0
        assert plan.split_components.size == 0
        plan.validate(two_components)

    @pytest.mark.parametrize("method", ["bisection", "kway"])
    def test_separator_plan_splits_large_component(self, method):
        graph = grid_2d(20, 20)
        plan = separator_plan(graph, max_shard_nodes=120, method=method)
        plan.validate(graph)
        assert plan.strategy == "separator"
        assert plan.num_shards >= 2
        assert plan.separator.size > 0
        assert np.array_equal(plan.split_components, [0])
        # separator really separates: no edge joins two distinct regions
        shard = plan.shard_of
        heads, tails = graph.heads, graph.tails
        both_regions = (shard[heads] >= 0) & (shard[tails] >= 0)
        assert not np.any(both_regions & (shard[heads] != shard[tails]))
        # regions respect the cap
        sizes = np.bincount(shard[shard >= 0], minlength=plan.num_shards)
        assert sizes.max() <= 120

    def test_small_components_stay_whole(self, two_components):
        plan = separator_plan(two_components, max_shard_nodes=10)
        assert plan.num_shards == 2
        assert plan.separator.size == 0
        plan.validate(two_components)

    def test_plan_is_deterministic(self):
        graph = barabasi_albert_graph(400, 3, seed=5)
        a = separator_plan(graph, max_shard_nodes=100, seed=3)
        b = separator_plan(graph, max_shard_nodes=100, seed=3)
        assert np.array_equal(a.shard_of, b.shard_of)
        assert np.array_equal(a.separator, b.separator)

    def test_unsplittable_component_folds_to_one_region(self):
        # a 4-node star below any sensible cut: dissection cannot win,
        # so the component must fold back into one ordinary region with
        # no separator rather than producing empty regions
        star = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        plan = separator_plan(star, max_shard_nodes=2)
        plan.validate(star)
        assert plan.separator.size == 0 or plan.num_shards >= 2
        sizes = np.bincount(
            plan.shard_of[plan.shard_of >= 0], minlength=plan.num_shards
        )
        assert sizes.min() > 0  # no empty regions, ever

    def test_tiny_path_never_crashes(self):
        for n in range(2, 9):
            graph = path_graph(n)
            plan = separator_plan(graph, max_shard_nodes=2)
            plan.validate(graph)

    def test_make_plan_dispatches_on_config(self, small_grid):
        comp = make_plan(small_grid, EngineConfig())
        assert comp.strategy == "component"
        sep = make_plan(
            small_grid,
            EngineConfig(shard_strategy="separator", max_shard_nodes=20),
        )
        assert sep.strategy == "separator"
        assert sep.num_shards > 1

    def test_bad_arguments_rejected(self, small_grid):
        with pytest.raises(ValueError, match="separator method"):
            separator_plan(small_grid, method="magic")
        with pytest.raises(ValueError, match="max_shard_nodes"):
            separator_plan(small_grid, max_shard_nodes=1)
        with pytest.raises(ValueError, match="shard_strategy"):
            EngineConfig(shard_strategy="magic")
        with pytest.raises(ValueError, match="separator"):
            EngineConfig(separator="magic")


# ----------------------------------------------------------------------
# exactness of the Schur cross-region path
# ----------------------------------------------------------------------
class TestExactness:
    @pytest.mark.parametrize("graph_name", ["grid", "powerlaw", "sbm"])
    @pytest.mark.parametrize("method", ["bisection", "kway"])
    def test_matches_dense_reference(self, graph_name, method):
        graph = {
            "grid": lambda: grid_2d(16, 16, jitter=0.4, seed=1),
            "powerlaw": lambda: barabasi_albert_graph(
                300, 3, weight_low=0.5, weight_high=2.0, seed=2
            ),
            "sbm": _sbm_component,
        }[graph_name]()
        engine = build_engine(
            graph,
            EngineConfig(
                method="exact", shard_strategy="separator",
                max_shard_nodes=max(40, graph.num_nodes // 5),
                separator=method,
            ),
        )
        assert isinstance(engine, PartitionedEngine)
        assert engine.plan.separator.size > 0, "test must exercise the Schur path"
        rng = np.random.default_rng(0)
        pairs = _probe_pairs(engine, rng)
        expected = _reference(graph).query_pairs(pairs)
        np.testing.assert_allclose(
            engine.query_pairs(pairs), expected, rtol=1e-8, atol=1e-10
        )

    def test_multi_component_mix(self):
        # two split components + one small whole component + isolated node
        g1 = grid_2d(12, 12)
        g2 = barabasi_albert_graph(150, 3, seed=4)
        parts, offset = [], 0
        heads, tails, weights = [], [], []
        for g in (g1, g2, path_graph(5)):
            heads.append(g.heads + offset)
            tails.append(g.tails + offset)
            weights.append(g.weights)
            offset += g.num_nodes
        graph = Graph(
            offset + 1,  # plus one isolated node
            np.concatenate(heads), np.concatenate(tails),
            np.concatenate(weights),
        )
        engine = build_engine(
            graph,
            EngineConfig(
                method="exact", shard_strategy="separator", max_shard_nodes=60
            ),
        )
        assert engine.plan.split_components.size >= 2
        rng = np.random.default_rng(3)
        pairs = _probe_pairs(engine, rng)
        got = engine.query_pairs(pairs)
        expected = _reference(graph).query_pairs(pairs)
        finite = np.isfinite(expected)
        np.testing.assert_allclose(
            got[finite], expected[finite], rtol=1e-8, atol=1e-10
        )
        assert np.array_equal(np.isfinite(got), finite)

    def test_cholinv_regions_within_error_bound(self):
        graph = grid_2d(20, 20, jitter=0.3, seed=6)
        epsilon = 1e-4
        sharded = build_engine(
            graph,
            EngineConfig(
                epsilon=epsilon, drop_tol=1e-6,
                shard_strategy="separator", max_shard_nodes=150,
            ),
        )
        monolithic = build_engine(
            graph, EngineConfig(epsilon=epsilon, drop_tol=1e-6)
        )
        exact = _reference(graph)
        rng = np.random.default_rng(1)
        pairs = _probe_pairs(sharded, rng)
        truth = exact.query_pairs(pairs)
        err_sharded = np.abs(sharded.query_pairs(pairs) - truth) / truth.clip(1e-12)
        err_mono = np.abs(monolithic.query_pairs(pairs) - truth) / truth.clip(1e-12)
        # region sharding must not degrade the configured accuracy: stay
        # within a small factor of the monolithic engine's achieved error
        # and well inside the coarse engineering bound
        assert err_sharded.max() <= max(10 * err_mono.max(), 10 * epsilon)
        assert err_sharded.max() < 0.01

    def test_sharded_engine_alias_still_components(self, two_components):
        engine = build_engine(two_components, EngineConfig(sharded=True))
        assert isinstance(engine, ShardedEngine)
        assert isinstance(engine, PartitionedEngine)
        assert engine.plan.strategy == "component"
        assert engine.num_shards == 2


# ----------------------------------------------------------------------
# lazy builds under concurrency
# ----------------------------------------------------------------------
class TestLazyAndConcurrency:
    def test_lazy_matches_eager_bit_identical(self):
        graph = grid_2d(14, 14, jitter=0.2, seed=2)
        config = EngineConfig(
            shard_strategy="separator", max_shard_nodes=70, lazy_shards=True
        )
        lazy = build_engine(graph, config)
        eager = build_engine(graph, config.replace(lazy_shards=False))
        assert lazy.shards_built == 0
        rng = np.random.default_rng(5)
        pairs = _probe_pairs(lazy, rng, count=200)
        assert np.array_equal(lazy.query_pairs(pairs), eager.query_pairs(pairs))
        assert lazy.shards_built == eager.shards_built

    def test_concurrent_cold_queries_agree(self):
        graph = barabasi_albert_graph(250, 3, seed=9)
        config = EngineConfig(
            method="exact", shard_strategy="separator",
            max_shard_nodes=60, lazy_shards=True,
        )
        engine = build_engine(graph, config)
        expected = build_engine(graph, config.replace(lazy_shards=False))
        rng = np.random.default_rng(11)
        batches = [_probe_pairs(engine, rng, count=80) for _ in range(8)]
        results = [None] * len(batches)
        errors = []

        def hammer(i: int) -> None:
            try:
                results[i] = engine.query_pairs(batches[i])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(len(batches))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for batch, got in zip(batches, results):
            assert np.array_equal(got, expected.query_pairs(batch))

    def test_warm_up_workers_bit_identical(self):
        graph = grid_2d(16, 16, jitter=0.2, seed=3)
        config = EngineConfig(
            shard_strategy="separator", max_shard_nodes=80, lazy_shards=True
        )
        rng = np.random.default_rng(2)
        baseline_engine = build_engine(graph, config)
        baseline_engine.warm_up(workers=1)
        pairs = _probe_pairs(baseline_engine, rng)
        baseline = baseline_engine.query_pairs(pairs)
        for workers in (2, 4):
            engine = build_engine(graph, config)
            built = engine.warm_up(workers=workers)
            assert built == engine.num_shards
            assert np.array_equal(engine.query_pairs(pairs), baseline)


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
class TestPartitionedPersistence:
    def _engine(self, lazy: bool = False) -> PartitionedEngine:
        graph = grid_2d(14, 14, jitter=0.3, seed=8)
        return build_engine(
            graph,
            EngineConfig(
                epsilon=1e-3, shard_strategy="separator",
                max_shard_nodes=70, lazy_shards=lazy,
            ),
        )

    def test_round_trip_bit_identical(self, tmp_path):
        engine = self._engine()
        path = engine.save(tmp_path / "partitioned.npz")
        restored = load_engine(path)
        assert isinstance(restored, PartitionedEngine)
        assert restored.plan.strategy == "separator"
        assert np.array_equal(restored.plan.shard_of, engine.plan.shard_of)
        rng = np.random.default_rng(4)
        pairs = _probe_pairs(engine, rng)
        assert np.array_equal(
            restored.query_pairs(pairs), engine.query_pairs(pairs)
        )
        # restore is warm: nothing rebuilt to answer
        assert restored.shards_built == engine.shards_built

    def test_round_trip_mmap(self, tmp_path):
        engine = self._engine()
        path = engine.save(tmp_path / "partitioned.npz")
        restored = load_engine(path, mmap=True)
        rng = np.random.default_rng(4)
        pairs = _probe_pairs(engine, rng)
        assert np.array_equal(
            restored.query_pairs(pairs), engine.query_pairs(pairs)
        )

    def test_partial_warm_save(self, tmp_path):
        engine = self._engine(lazy=True)
        rng = np.random.default_rng(6)
        # touch one region so exactly some (not all) shards are built
        members = engine.plan.members(0)
        warm_pairs = np.column_stack(
            [rng.choice(members, 30), rng.choice(members, 30)]
        )
        engine.query_pairs(warm_pairs)
        assert 0 < engine.shards_built < engine.num_shards
        restored = load_engine(engine.save(tmp_path / "partial.npz"))
        assert restored.shards_built == engine.shards_built
        pairs = _probe_pairs(engine, rng)
        assert np.array_equal(
            restored.query_pairs(pairs), engine.query_pairs(pairs)
        )

    def test_non_cholinv_regions_refuse(self, tmp_path):
        graph = grid_2d(10, 10)
        engine = build_engine(
            graph,
            EngineConfig(
                method="exact", shard_strategy="separator", max_shard_nodes=40
            ),
        )
        with pytest.raises(NotImplementedError, match="persistence"):
            engine.save(tmp_path / "nope.npz")

    def test_v1_files_still_load(self, tmp_path):
        # a v1 archive has no "kind" member; the loader must default to
        # the monolithic cholinv layout
        graph = grid_2d(8, 8)
        engine = build_engine(graph, EngineConfig(epsilon=1e-3))
        path = engine.save(tmp_path / "v1.npz")
        data = dict(np.load(path, allow_pickle=False))
        data.pop("kind")
        data.pop("format_version")
        legacy = tmp_path / "legacy.npz"
        np.savez(legacy, format_version=np.asarray(1), **data)
        restored = load_engine(legacy)
        pairs = graph.edge_array()
        assert np.array_equal(
            restored.query_pairs(pairs), engine.query_pairs(pairs)
        )


# ----------------------------------------------------------------------
# planner / service routing
# ----------------------------------------------------------------------
class TestPlannerRouting:
    def test_mixed_batch_routes_and_gathers(self):
        graph = grid_2d(14, 14, jitter=0.2, seed=1)
        engine = build_engine(
            graph,
            EngineConfig(
                method="exact", shard_strategy="separator", max_shard_nodes=70
            ),
        )
        rng = np.random.default_rng(7)
        pairs = _probe_pairs(engine, rng)
        pairs = np.concatenate([pairs, [[3, 3], [5, 5]]])  # self pairs
        plan = QueryPlanner(engine).plan(pairs)
        subbatches = plan.build_subbatches()
        shard_ids = {sb.shard_id for sb in subbatches}
        assert any(s < engine.num_shards for s in shard_ids)
        assert any(s >= engine.num_shards for s in shard_ids), \
            "mixed batch must produce a cross-region pseudo group"
        for sb in subbatches:
            plan.scatter(sb, plan.execute_subbatch(sb))
        np.testing.assert_allclose(
            plan.gather(), engine.query_pairs(pairs), rtol=1e-12
        )

    def test_pseudo_groups_use_global_ids(self):
        graph = grid_2d(10, 10)
        engine = build_engine(
            graph,
            EngineConfig(
                method="exact", shard_strategy="separator", max_shard_nodes=40
            ),
        )
        sep = engine.plan.separator
        ps = np.array([int(sep[0])])
        qs = np.array([int(sep[-1])])
        groups = engine.shard_subbatches(ps, qs)
        assert len(groups) == 1
        shard_id, _, grouped = groups[0]
        assert shard_id >= engine.num_shards
        assert np.array_equal(grouped, np.column_stack([ps, qs]))


# ----------------------------------------------------------------------
# diagnostics / interface fixes
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_negative_labels_are_interface_and_uncut(self, small_grid):
        plan = separator_plan(small_grid, max_shard_nodes=20)
        labels = plan.shard_of
        roles = classify_nodes(small_grid, labels, ports=np.empty(0, np.int64))
        assert np.all(roles[labels < 0] == 1)  # INTERFACE
        # separator-touching edges are not block-to-block cut edges
        cut = edge_cut(small_grid, labels)
        heads, tails = small_grid.heads, small_grid.tails
        pure = (labels[heads] >= 0) & (labels[tails] >= 0)
        expected = small_grid.weights[
            pure & (labels[heads] != labels[tails])
        ].sum()
        assert cut == pytest.approx(float(expected))

    def test_partition_quality_ignores_separator(self, small_grid):
        plan = separator_plan(small_grid, max_shard_nodes=20)
        quality = partition_quality(small_grid, plan.shard_of)
        assert quality.block_sizes.sum() + plan.separator.size == small_grid.num_nodes
        assert quality.imbalance >= 1.0

    def test_separator_only_labelling_does_not_crash(self, tiny_path):
        labels = np.full(tiny_path.num_nodes, -1, dtype=np.int64)
        quality = partition_quality(tiny_path, labels)
        assert quality.block_sizes.sum() == 0
        assert quality.imbalance == 1.0
        assert edge_cut(tiny_path, labels) == 0.0

    def test_separator_quality_values(self):
        # 2 regions of 2 joined through one separator node 4:
        # 0-1  2-3 regions, edges (1,4,w=2) and (2,4,w=3) couple them
        graph = Graph(
            5,
            np.array([0, 2, 1, 2]),
            np.array([1, 3, 4, 4]),
            np.array([1.0, 1.0, 2.0, 3.0]),
        )
        labels = np.array([0, 0, 1, 1, -1])
        reports = separator_quality(graph, labels)
        assert len(reports) == 1
        sq = reports[0]
        assert isinstance(sq, SeparatorQuality)
        assert sq.num_regions == 2
        assert sq.separator_size == 1
        assert sq.region_sizes.tolist() == [2, 2]
        assert sq.separator_fraction == pytest.approx(0.2)
        assert sq.coupling_weight == pytest.approx(5.0)
        assert sq.imbalance == pytest.approx(1.0)

    def test_partition_report_contents(self):
        graph = grid_2d(12, 12)
        engine = build_engine(
            graph,
            EngineConfig(
                method="exact", shard_strategy="separator", max_shard_nodes=50
            ),
        )
        report = engine.partition_report()
        assert report["strategy"] == "separator"
        assert report["num_shards"] == engine.num_shards
        assert report["separator_size"] == engine.plan.separator.size
        assert report["split_components"] == [0]
        assert len(report["separators"]) == 1
        assert report["partition"].block_sizes.sum() == (
            graph.num_nodes - engine.plan.separator.size
        )
