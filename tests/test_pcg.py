"""Tests for the preconditioned conjugate gradient solver."""

import numpy as np

from repro.cholesky.incomplete import ichol
from repro.graphs.generators import fe_mesh_2d
from repro.graphs.laplacian import grounded_laplacian
from repro.linalg.pcg import ichol_preconditioner, pcg
from repro.linalg.sparse_utils import relative_residual


def test_solves_spd_system(spd_matrix):
    rng = np.random.default_rng(0)
    b = rng.normal(size=spd_matrix.shape[0])
    result = pcg(spd_matrix, b, rtol=1e-10)
    assert result.converged
    assert relative_residual(spd_matrix, result.x, b) < 1e-9


def test_zero_rhs(spd_matrix):
    result = pcg(spd_matrix, np.zeros(spd_matrix.shape[0]))
    assert result.converged
    assert result.iterations == 0
    assert np.allclose(result.x, 0.0)


def test_warm_start(spd_matrix):
    rng = np.random.default_rng(1)
    b = rng.normal(size=spd_matrix.shape[0])
    cold = pcg(spd_matrix, b, rtol=1e-10)
    warm = pcg(spd_matrix, b, x0=cold.x, rtol=1e-10)
    assert warm.iterations <= 1


def test_max_iterations_respected(spd_matrix):
    rng = np.random.default_rng(2)
    b = rng.normal(size=spd_matrix.shape[0])
    result = pcg(spd_matrix, b, rtol=1e-14, max_iterations=2)
    assert result.iterations <= 2
    assert not result.converged


def test_iteration_count_consistent_across_exit_paths(spd_matrix):
    """Regression: ``iterations`` equals the number of A@p products on both
    exit paths, so re-running with ``max_iterations`` set to a converged
    run's count reproduces it exactly, and one fewer falls just short."""
    rng = np.random.default_rng(5)
    b = rng.normal(size=spd_matrix.shape[0])
    full = pcg(spd_matrix, b, rtol=1e-8)  # early-convergence break path
    assert full.converged and full.iterations > 1
    replay = pcg(spd_matrix, b, rtol=1e-8, max_iterations=full.iterations)
    assert replay.converged
    assert replay.iterations == full.iterations
    assert np.allclose(replay.x, full.x)
    short = pcg(spd_matrix, b, rtol=1e-8, max_iterations=full.iterations - 1)
    assert not short.converged  # loop-condition exit path
    assert short.iterations == full.iterations - 1


def test_preconditioner_reduces_iterations():
    graph = fe_mesh_2d(14, 14, seed=1)
    matrix, _ = grounded_laplacian(graph, 1.0)
    rng = np.random.default_rng(3)
    b = rng.normal(size=matrix.shape[0])
    plain = pcg(matrix, b, rtol=1e-9)
    factor = ichol(matrix, drop_tol=1e-3, ordering="rcm")
    pre = pcg(matrix, b, preconditioner=ichol_preconditioner(factor), rtol=1e-9)
    assert pre.converged and plain.converged
    assert pre.iterations < plain.iterations / 2
