"""Round-trip regression test for config↔persistence drift.

The executable twin of the ``config-persistence-drift`` lint rule: build
a cholinv engine whose config sets a *non-default* value for every field
the engine registers, save it, load it, and compare field by field.  If
someone adds a registered param without teaching ``save_engine`` /
``from_state`` about it, the loaded config silently falls back to the
default — exactly the bug this test (and the rule) exists to catch.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.engine import (
    EngineConfig,
    build_engine,
    engine_params,
    registered_engines,
)
from repro.core.persistence import load_engine, save_engine
from repro.graphs.generators import fe_mesh_2d

# one deliberately non-default value per cholinv-registered field; the
# assertion below forces this dict to track the registration exactly
NON_DEFAULTS = {
    "epsilon": 2e-4,
    "drop_tol": 5e-4,
    "ordering": "natural",
    "mode": "reference",
    "small_column_threshold": 7.5,
    "ground_value": 1.25,
    "build_workers": 2,
}


@pytest.fixture(scope="module")
def mesh():
    return fe_mesh_2d(6, 6, seed=3)


def test_non_defaults_cover_registration_exactly():
    # adding a param to @register_engine("cholinv", ...) must force an
    # update here (and, transitively, in save_engine/from_state)
    assert set(NON_DEFAULTS) == set(engine_params("cholinv"))


def test_every_non_default_differs_from_the_default():
    defaults = EngineConfig()
    for name, value in NON_DEFAULTS.items():
        assert value != getattr(defaults, name), name


def test_cholinv_config_round_trips_field_by_field(mesh, tmp_path):
    config = EngineConfig(method="cholinv", **NON_DEFAULTS)
    engine = build_engine(mesh, config)
    restored = load_engine(save_engine(engine, tmp_path / "engine.npz"))
    assert restored.config is not None
    for field in ("method", *engine_params("cholinv")):
        assert getattr(restored.config, field) == getattr(config, field), (
            f"config field {field!r} did not survive save/load"
        )


def test_round_tripped_engine_answers_identically(mesh, tmp_path):
    engine = build_engine(mesh, EngineConfig(method="cholinv", **NON_DEFAULTS))
    restored = load_engine(save_engine(engine, tmp_path / "engine.npz"))
    rng = np.random.default_rng(11)
    pairs = rng.integers(0, mesh.num_nodes, size=(32, 2))
    np.testing.assert_array_equal(
        engine.query_pairs(pairs), restored.query_pairs(pairs)
    )


def test_config_fields_are_a_superset_of_every_registration():
    # no engine may register a param EngineConfig doesn't carry (enforced
    # at registration time too; this pins it for all shipped engines)
    fields = {f.name for f in dataclasses.fields(EngineConfig)}
    for name in registered_engines():
        missing = set(engine_params(name)) - fields
        assert not missing, f"{name} registers unknown fields {sorted(missing)}"


def test_non_persistable_engines_say_so(mesh, tmp_path):
    for name in registered_engines():
        if name in ("cholinv", "landmark"):
            continue  # these persist; covered by the round-trip tests
        engine = build_engine(mesh, EngineConfig(method=name, seed=0))
        with pytest.raises(NotImplementedError):
            engine.save(tmp_path / f"{name}.npz")


# ----------------------------------------------------------------------
# landmark engine: the second persisted kind, same drill
# ----------------------------------------------------------------------

LANDMARK_NON_DEFAULTS = {
    "num_landmarks": 5,
    "landmark_strategy": "random",
    "seed": 7,
    "epsilon": 2e-4,
    "drop_tol": 5e-4,
    "ordering": "natural",
    "mode": "reference",
    "small_column_threshold": 7.5,
    "ground_value": 1.25,
    "build_workers": 2,
}


def test_landmark_non_defaults_cover_registration_exactly():
    assert set(LANDMARK_NON_DEFAULTS) == set(engine_params("landmark"))


def test_landmark_non_defaults_differ_from_defaults():
    defaults = EngineConfig()
    for name, value in LANDMARK_NON_DEFAULTS.items():
        assert value != getattr(defaults, name), name


def test_landmark_config_round_trips_field_by_field(mesh, tmp_path):
    config = EngineConfig(method="landmark", **LANDMARK_NON_DEFAULTS)
    engine = build_engine(mesh, config)
    restored = load_engine(save_engine(engine, tmp_path / "landmark.npz"))
    assert restored.config is not None
    for field in ("method", *engine_params("landmark")):
        assert getattr(restored.config, field) == getattr(config, field), (
            f"config field {field!r} did not survive save/load"
        )


def test_landmark_round_trip_answers_identically(mesh, tmp_path):
    engine = build_engine(
        mesh, EngineConfig(method="landmark", **LANDMARK_NON_DEFAULTS)
    )
    restored = load_engine(save_engine(engine, tmp_path / "landmark.npz"))
    rng = np.random.default_rng(12)
    pairs = rng.integers(0, mesh.num_nodes, size=(32, 2))
    values, halves = engine.query_pairs_with_bounds(pairs)
    restored_values, restored_halves = restored.query_pairs_with_bounds(pairs)
    np.testing.assert_array_equal(values, restored_values)
    np.testing.assert_array_equal(halves, restored_halves)
