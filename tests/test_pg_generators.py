"""Tests for the synthetic IBM-style power-grid generator."""

import numpy as np
import pytest

from repro.graphs.components import connected_components
from repro.powergrid.generators import PGConfig, synthetic_ibmpg_like


class TestStructure:
    def test_node_count_two_nets(self):
        grid = synthetic_ibmpg_like(nx=10, ny=12, seed=0)
        assert grid.num_nodes == 2 * 10 * 12

    def test_single_net(self):
        grid = synthetic_ibmpg_like(nx=10, ny=10, nets=("vdd",), seed=0)
        assert grid.num_nodes == 100
        assert all(name.startswith("n_vdd") for name in grid.node_names)

    def test_nets_are_disconnected_components(self):
        grid = synthetic_ibmpg_like(nx=8, ny=8, seed=1)
        graph = grid.to_graph()
        labels, count = connected_components(graph)
        assert count == 2
        vdd_idx = grid.index_of("n_vdd_0_0")
        gnd_idx = grid.index_of("n_gnd_0_0")
        assert labels[vdd_idx] != labels[gnd_idx]

    def test_pads_on_lattice(self):
        config = PGConfig(nx=20, ny=20, nets=("vdd",), pad_pitch=10)
        grid = synthetic_ibmpg_like(config, seed=0)
        assert len(grid.vsources) == 4  # 2x2 pad lattice
        assert all(vs.voltage == config.vdd for vs in grid.vsources)

    def test_gnd_pads_at_zero(self):
        grid = synthetic_ibmpg_like(nx=10, ny=10, seed=0)
        gnd_pads = [vs for vs in grid.vsources if "gnd" in vs.name]
        assert gnd_pads
        assert all(vs.voltage == 0.0 for vs in gnd_pads)

    def test_load_signs(self):
        grid = synthetic_ibmpg_like(nx=10, ny=10, seed=0)
        vdd_loads = [cs for cs in grid.isources if "vdd" in cs.name]
        gnd_loads = [cs for cs in grid.isources if "gnd" in cs.name]
        assert all(cs.dc > 0 for cs in vdd_loads)
        assert all(cs.dc < 0 for cs in gnd_loads)


class TestModes:
    def test_dc_mode_has_no_caps(self):
        grid = synthetic_ibmpg_like(nx=8, ny=8, transient=False, seed=2)
        assert len(grid.cap_a) == 0
        assert all(cs.waveform is None for cs in grid.isources)

    def test_transient_mode(self):
        grid = synthetic_ibmpg_like(nx=8, ny=8, transient=True, seed=2)
        assert len(grid.cap_a) > 0
        assert all(cs.waveform is not None for cs in grid.isources)

    def test_deterministic(self):
        a = synthetic_ibmpg_like(nx=8, ny=8, seed=7)
        b = synthetic_ibmpg_like(nx=8, ny=8, seed=7)
        assert np.allclose(a.res_ohms, b.res_ohms)
        assert [cs.dc for cs in a.isources] == [cs.dc for cs in b.isources]

    def test_config_override(self):
        config = PGConfig(nx=6, ny=6)
        grid = synthetic_ibmpg_like(config, seed=0, nx=9)
        assert grid.num_nodes == 2 * 9 * 6

    def test_validation(self):
        with pytest.raises(ValueError):
            PGConfig(nx=1, ny=5)
        with pytest.raises(ValueError):
            PGConfig(nets=("vcc",))
        with pytest.raises(ValueError):
            PGConfig(load_fraction=0.0)

    def test_resistance_jitter_bounds(self):
        config = PGConfig(nx=8, ny=8, wire_resistance=1.0, resistance_jitter=0.2)
        grid = synthetic_ibmpg_like(config, seed=3)
        ohms = np.asarray(grid.res_ohms)
        assert ohms.min() >= 1.0 / 1.2 - 1e-9
        assert ohms.max() <= 1.2 + 1e-9
