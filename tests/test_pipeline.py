"""Tests for the end-to-end Alg. 1 reduction pipeline."""

import numpy as np
import pytest

from repro.powergrid.dc import dc_analysis
from repro.powergrid.generators import synthetic_ibmpg_like
from repro.reduction.pipeline import PGReducer, ReductionConfig


@pytest.fixture(scope="module")
def pg_case():
    grid = synthetic_ibmpg_like(nx=16, ny=16, seed=0, pad_pitch=6)
    return grid, dc_analysis(grid)


def run_reduction(grid, **config_kwargs):
    config_kwargs.setdefault("seed", 1)
    reducer = PGReducer(grid, ReductionConfig(**config_kwargs))
    return reducer, reducer.reduce()


class TestInvariants:
    def test_all_ports_preserved(self, pg_case):
        grid, _ = pg_case
        _, reduced = run_reduction(grid, er_method="cholinv")
        ports = grid.port_nodes()
        assert np.all(reduced.node_map[ports] >= 0)
        # sources present with unchanged values
        assert len(reduced.grid.vsources) == len(grid.vsources)
        assert len(reduced.grid.isources) == len(grid.isources)
        original_total = sum(cs.dc for cs in grid.isources)
        reduced_total = sum(cs.dc for cs in reduced.grid.isources)
        assert np.isclose(original_total, reduced_total)

    def test_node_count_shrinks(self, pg_case):
        grid, _ = pg_case
        _, reduced = run_reduction(grid, er_method="cholinv")
        assert reduced.grid.num_nodes < grid.num_nodes

    def test_node_names_survive(self, pg_case):
        grid, _ = pg_case
        _, reduced = run_reduction(grid, er_method="cholinv")
        for port in grid.port_nodes():
            name = grid.name_of(int(port))
            assert reduced.grid.name_of(int(reduced.node_map[port])) == name

    def test_block_cache_populated(self, pg_case):
        grid, _ = pg_case
        reducer, _ = run_reduction(grid, er_method="cholinv")
        assert len(reducer._block_cache) == reducer.num_blocks

    def test_requires_ports(self):
        from repro.powergrid.netlist import PowerGrid

        pg = PowerGrid()
        a, b = pg.node("a"), pg.node("b")
        pg.add_resistor(a, b, 1.0)
        with pytest.raises(ValueError, match="no ports"):
            PGReducer(pg)


class TestExactnessLimit:
    def test_schur_only_reduction_is_exact(self, pg_case):
        """No merging + no sampling => reduced DC solution is exact."""
        grid, original = pg_case
        _, reduced = run_reduction(
            grid,
            er_method="exact",
            merge_resistance_fraction=0.0,
            sparsify_sample_factor=1e9,
        )
        solution = dc_analysis(reduced.grid)
        ports = grid.port_nodes()
        errors = reduced.port_voltage_errors(
            original.voltages, solution.voltages, ports
        )
        assert errors.max() < 1e-8


class TestAccuracy:
    @pytest.mark.parametrize("method", ["exact", "cholinv", "random_projection"])
    def test_port_errors_small(self, pg_case, method):
        grid, original = pg_case
        kwargs = {}
        if method == "random_projection":
            kwargs = {"er_kwargs": {"num_projections": 400}}
        _, reduced = run_reduction(grid, er_method=method, **kwargs)
        solution = dc_analysis(reduced.grid)
        ports = grid.port_nodes()
        errors = reduced.port_voltage_errors(
            original.voltages, solution.voltages, ports
        )
        rel = errors.mean() / original.max_drop()
        assert rel < 0.08  # single-digit percent, as in Table II

    def test_cholinv_matches_exact_reduction_quality(self, pg_case):
        """Alg. 3-based reduction must not lose accuracy vs exact ER
        (the headline claim of Table II)."""
        grid, original = pg_case
        ports = grid.port_nodes()
        rels = {}
        for method in ("exact", "cholinv"):
            _, reduced = run_reduction(grid, er_method=method)
            solution = dc_analysis(reduced.grid)
            errors = reduced.port_voltage_errors(
                original.voltages, solution.voltages, ports
            )
            rels[method] = errors.mean() / original.max_drop()
        assert rels["cholinv"] < 2.5 * rels["exact"] + 1e-4


class TestIncrementalMachinery:
    def test_rebuild_reuses_cache(self, pg_case):
        grid, _ = pg_case
        reducer, _ = run_reduction(grid, er_method="cholinv")
        import copy

        modified = copy.deepcopy(grid)
        clone = reducer.rebuild_for(modified, modified_blocks=[0])
        assert 0 not in clone._block_cache
        for b in range(1, reducer.num_blocks):
            assert b in clone._block_cache

    def test_rebuild_identical_grid_gives_same_result(self, pg_case):
        grid, _ = pg_case
        reducer, reduced = run_reduction(grid, er_method="exact",
                                         merge_resistance_fraction=0.0,
                                         sparsify_sample_factor=1e9)
        import copy

        clone = reducer.rebuild_for(copy.deepcopy(grid), modified_blocks=[0])
        reduced2 = clone.reduce()
        a = dc_analysis(reduced.grid)
        b = dc_analysis(reduced2.grid)
        ports = grid.port_nodes()
        va = a.voltages[reduced.node_map[ports]]
        vb = b.voltages[reduced2.node_map[ports]]
        assert np.allclose(va, vb, atol=1e-9)

    def test_rebuild_rejects_different_topology(self, pg_case):
        grid, _ = pg_case
        reducer, _ = run_reduction(grid, er_method="cholinv")
        other = synthetic_ibmpg_like(nx=8, ny=8, seed=3)
        with pytest.raises(ValueError):
            reducer.rebuild_for(other, modified_blocks=[0])


class TestConfig:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            ReductionConfig(er_method="bogus")

    def test_block_count_from_ports(self, pg_case):
        grid, _ = pg_case
        reducer = PGReducer(grid, ReductionConfig(ports_per_block=20, seed=0))
        expected = max(1, grid.port_nodes().size // 20)
        assert reducer.num_blocks == expected

    def test_explicit_block_count(self, pg_case):
        grid, _ = pg_case
        reducer = PGReducer(grid, ReductionConfig(num_blocks=3, seed=0))
        assert reducer.num_blocks == 3
