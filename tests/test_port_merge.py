"""Tests for effective-resistance-based node merging."""

import numpy as np

from repro.core.effective_resistance import ExactEffectiveResistance
from repro.graphs.generators import fe_mesh_2d, path_graph
from repro.graphs.graph import Graph
from repro.reduction.port_merge import merge_by_effective_resistance


def test_merges_only_below_threshold():
    g = path_graph(4)  # resistances are all 1.0
    resistances = np.array([1.0, 0.001, 1.0])
    result = merge_by_effective_resistance(g, resistances, threshold=0.01)
    assert result.merged_count == 1
    assert result.graph.num_nodes == 3


def test_no_merge_when_threshold_zero():
    g = path_graph(5)
    resistances = np.ones(4)
    result = merge_by_effective_resistance(g, resistances, threshold=0.0)
    assert result.merged_count == 0
    assert result.graph.num_nodes == 5


def test_protected_nodes_never_merge_together():
    g = Graph.from_edges(2, [(0, 1, 1e9)])  # practically a short
    resistances = np.array([1e-9])
    result = merge_by_effective_resistance(
        g, resistances, threshold=1.0, protected=np.array([0, 1])
    )
    assert result.merged_count == 0


def test_protected_absorbs_unprotected():
    g = path_graph(3)
    resistances = np.array([1e-6, 1e-6])
    result = merge_by_effective_resistance(
        g, resistances, threshold=1.0, protected=np.array([0])
    )
    # everything collapses into one cluster containing the protected node
    assert result.graph.num_nodes == 1
    assert result.merged_count == 2


def test_parallel_conductances_accumulate():
    """Merging the middle of a triangle path adds the parallel branches."""
    g = Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 3.0)])
    resistances = np.array([10.0, 1e-9, 10.0])
    result = merge_by_effective_resistance(g, resistances, threshold=1e-6)
    assert result.graph.num_nodes == 2
    assert result.graph.num_edges == 1
    # 0-1 (w=1) and 0-2 (w=3) become parallel after 1 and 2 merge
    assert np.isclose(result.graph.weights[0], 4.0)


def test_mapping_is_consistent():
    g = fe_mesh_2d(5, 5, seed=0)
    exact = ExactEffectiveResistance(g)
    resistances = exact.all_edge_resistances()
    threshold = float(np.quantile(resistances, 0.2))
    result = merge_by_effective_resistance(g, resistances, threshold)
    assert result.mapping.shape == (25,)
    assert result.mapping.max() == result.graph.num_nodes - 1
    # contiguous ids
    assert np.array_equal(
        np.unique(result.mapping), np.arange(result.graph.num_nodes)
    )


def test_merging_short_edges_barely_changes_resistance():
    """Collapsing electrically-tiny edges perturbs far-pair ER only slightly."""
    edges = [(0, 1, 1.0), (1, 2, 1e6), (2, 3, 1.0)]  # 1-2 is a near short
    g = Graph.from_edges(4, edges)
    before = ExactEffectiveResistance(g).query(0, 3)
    resistances = ExactEffectiveResistance(g).all_edge_resistances()
    result = merge_by_effective_resistance(g, resistances, threshold=1e-5)
    assert result.merged_count == 1
    merged_before = result.mapping[0]
    merged_after = result.mapping[3]
    after = ExactEffectiveResistance(result.graph).query(
        int(merged_before), int(merged_after)
    )
    assert np.isclose(after, before, rtol=1e-4)
