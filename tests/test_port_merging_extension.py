"""Tests for the [8]-style port-merging extension (protect_all_ports=False)."""

import numpy as np
import pytest

from repro.powergrid.dc import dc_analysis
from repro.powergrid.generators import synthetic_ibmpg_like
from repro.reduction.pipeline import PGReducer, ReductionConfig


@pytest.fixture(scope="module")
def dense_port_grid():
    """A grid with many closely-spaced loads, so ports do merge."""
    return synthetic_ibmpg_like(
        nx=16, ny=16, pad_pitch=6, load_fraction=0.25, seed=4
    )


def reduce_with(grid, protect_all_ports, merge_fraction=0.3):
    config = ReductionConfig(
        er_method="exact",
        protect_all_ports=protect_all_ports,
        merge_resistance_fraction=merge_fraction,
        seed=2,
    )
    reducer = PGReducer(grid, config)
    return reducer.reduce()


def test_modified_alg1_keeps_every_port(dense_port_grid):
    reduced = reduce_with(dense_port_grid, protect_all_ports=True)
    ports = dense_port_grid.port_nodes()
    assert np.all(reduced.node_map[ports] >= 0)
    assert np.array_equal(reduced.redirect[ports], ports)


def test_original_alg1_merges_some_ports(dense_port_grid):
    reduced = reduce_with(dense_port_grid, protect_all_ports=False)
    ports = dense_port_grid.port_nodes()
    merged_ports = np.sum(reduced.redirect[ports] != ports)
    assert merged_ports > 0, "aggressive merge threshold should merge ports"
    # every merged port still resolves to a live reduced node
    assert np.all(reduced.reduced_index_of(ports) >= 0)


def test_pads_never_merge(dense_port_grid):
    reduced = reduce_with(dense_port_grid, protect_all_ports=False)
    pads = dense_port_grid.pad_nodes()
    assert np.array_equal(reduced.redirect[pads], pads)
    # pad voltages intact in the reduced netlist
    assert len(reduced.grid.vsources) == len(dense_port_grid.vsources)


def test_port_merging_shrinks_model_more(dense_port_grid):
    keep_all = reduce_with(dense_port_grid, protect_all_ports=True)
    merge_ports = reduce_with(dense_port_grid, protect_all_ports=False)
    assert merge_ports.grid.num_nodes <= keep_all.grid.num_nodes


def test_accuracy_still_reasonable_with_port_merging(dense_port_grid):
    original = dc_analysis(dense_port_grid)
    reduced = reduce_with(dense_port_grid, protect_all_ports=False, merge_fraction=0.1)
    solution = dc_analysis(reduced.grid)
    ports = dense_port_grid.port_nodes()
    errors = reduced.port_voltage_errors(original.voltages, solution.voltages, ports)
    rel = errors.mean() / original.max_drop()
    assert rel < 0.15  # merging trades accuracy for size, within reason


def test_total_load_current_preserved(dense_port_grid):
    reduced = reduce_with(dense_port_grid, protect_all_ports=False)
    original_total = sum(cs.dc for cs in dense_port_grid.isources)
    reduced_total = sum(cs.dc for cs in reduced.grid.isources)
    assert np.isclose(original_total, reduced_total)
