"""Property-based tests (hypothesis) on the core data structures and
invariants of the paper:

* effective resistance is a metric (symmetry + triangle inequality);
* Lemma 1: approximate inverse of a Laplacian Cholesky factor is >= 0;
* Eq. 10 truncation never exceeds its 1-norm budget and is maximal;
* Laplacians are PSD with zero row sums for arbitrary weighted graphs;
* grounding preserves effective resistances for any positive ground value.
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cholesky.incomplete import ichol
from repro.cholesky.numeric import cholesky
from repro.core.approx_inverse import approximate_inverse
from repro.core.effective_resistance import (
    CholInvEffectiveResistance,
    ExactEffectiveResistance,
    dense_pinv_resistance,
)
from repro.core.truncation import dropped_fraction, truncation_keep_mask
from repro.graphs.graph import Graph
from repro.graphs.laplacian import grounded_laplacian, laplacian

SETTINGS = dict(max_examples=25, deadline=None)


@st.composite
def connected_graphs(draw, max_nodes=24):
    """Random connected weighted graph: a random spanning tree plus extras."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    # random spanning tree: attach node i to a random earlier node
    heads = [int(rng.integers(0, i)) for i in range(1, n)]
    tails = list(range(1, n))
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extra):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            heads.append(int(min(u, v)))
            tails.append(int(max(u, v)))
    weights = rng.uniform(0.1, 10.0, size=len(heads))
    return Graph(
        n,
        np.asarray(heads, dtype=np.int64),
        np.asarray(tails, dtype=np.int64),
        weights,
    ).coalesce()


@given(connected_graphs())
@settings(**SETTINGS)
def test_laplacian_psd_and_zero_rowsum(graph):
    lap = laplacian(graph).toarray()
    assert np.allclose(lap.sum(axis=1), 0.0, atol=1e-9)
    eigenvalues = np.linalg.eigvalsh(lap)
    assert eigenvalues.min() > -1e-8


@given(connected_graphs(), st.floats(min_value=0.01, max_value=100.0))
@settings(**SETTINGS)
def test_grounding_value_never_changes_resistances(graph, ground_value):
    pairs = graph.edge_array()[:10]
    grounded = ExactEffectiveResistance(graph, ground_value=ground_value)
    reference = dense_pinv_resistance(graph, pairs)
    assert np.allclose(grounded.query_pairs(pairs), reference, rtol=1e-6, atol=1e-9)


@given(connected_graphs())
@settings(**SETTINGS)
def test_effective_resistance_is_a_metric(graph):
    est = ExactEffectiveResistance(graph)
    n = graph.num_nodes
    rng = np.random.default_rng(0)
    for _ in range(5):
        a, b = rng.integers(0, n, size=2)
        assert np.isclose(est.query(int(a), int(b)), est.query(int(b), int(a)))
    if n >= 3:
        a, b, c = rng.choice(n, size=3, replace=False)
        rab = est.query(int(a), int(b))
        rbc = est.query(int(b), int(c))
        rac = est.query(int(a), int(c))
        assert rac <= rab + rbc + 1e-8


@given(connected_graphs(), st.floats(min_value=0.0, max_value=0.2))
@settings(**SETTINGS)
def test_lemma1_nonnegativity(graph, epsilon):
    matrix, _ = grounded_laplacian(graph, 1.0)
    factor = cholesky(matrix, ordering="amd")
    z, _ = approximate_inverse(factor.lower, epsilon=epsilon)
    assert z.nnz == 0 or z.data.min() >= -1e-12


@given(connected_graphs(), st.floats(min_value=0.0, max_value=0.3))
@settings(**SETTINGS)
def test_ict_sign_structure(graph, drop_tol):
    matrix, _ = grounded_laplacian(graph, 1.0)
    result = ichol(matrix, drop_tol=drop_tol, ordering="natural")
    coo = result.lower.tocoo()
    off = coo.row != coo.col
    assert np.all(coo.data[off] <= 1e-12)
    assert np.all(result.lower.diagonal() > 0)


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_truncation_budget_and_maximality(values, eps):
    values = np.asarray(values)
    mask = truncation_keep_mask(values, eps)
    assert dropped_fraction(values, mask) <= eps + 1e-9
    # maximality: adding the smallest kept entry to the dropped set must
    # blow the budget (unless everything was already dropped)
    total = np.abs(values).sum()
    if mask.any() and total > 0:
        dropped = np.abs(values[~mask]).sum()
        smallest_kept = np.abs(values[mask]).min()
        assert dropped + smallest_kept > eps * total - 1e-9 * total


@given(connected_graphs(max_nodes=16))
@settings(max_examples=15, deadline=None)
def test_cholinv_matches_exact_at_zero_tolerances(graph):
    est = CholInvEffectiveResistance(graph, epsilon=0.0, drop_tol=0.0)
    pairs = graph.edge_array()[:8]
    reference = dense_pinv_resistance(graph, pairs)
    assert np.allclose(est.query_pairs(pairs), reference, rtol=1e-6, atol=1e-9)


@given(connected_graphs(max_nodes=20))
@settings(max_examples=15, deadline=None)
def test_rayleigh_monotonicity_under_weight_increase(graph):
    """Increasing one edge weight can only decrease effective resistances."""
    rng = np.random.default_rng(1)
    edge = int(rng.integers(0, graph.num_edges))
    boosted_weights = graph.weights.copy()
    boosted_weights[edge] *= 10.0
    boosted = graph.with_weights(boosted_weights)
    pairs = graph.edge_array()[:6]
    before = ExactEffectiveResistance(graph).query_pairs(pairs)
    after = ExactEffectiveResistance(boosted).query_pairs(pairs)
    assert np.all(after <= before + 1e-9)
