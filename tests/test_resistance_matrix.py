"""Tests for pairwise resistance matrices and nearest-neighbour queries."""

import numpy as np
import pytest

from repro.core.effective_resistance import CholInvEffectiveResistance
from repro.core.resistance_matrix import (
    electrically_nearest_neighbours,
    exact_pairwise_resistance_matrix,
    pairwise_resistance_matrix,
)
from repro.graphs.generators import fe_mesh_2d, path_graph
from repro.graphs.graph import Graph


@pytest.fixture(scope="module")
def mesh_estimator():
    graph = fe_mesh_2d(8, 8, seed=0)
    return graph, CholInvEffectiveResistance(graph, epsilon=1e-4, drop_tol=0.0)


class TestPairwiseMatrix:
    def test_matches_exact(self, mesh_estimator):
        graph, est = mesh_estimator
        nodes = np.array([0, 7, 20, 35, 63])
        approx = pairwise_resistance_matrix(est, nodes)
        exact = exact_pairwise_resistance_matrix(graph, nodes)
        assert np.allclose(approx, exact, rtol=1e-2, atol=1e-6)

    def test_metric_properties(self, mesh_estimator):
        _, est = mesh_estimator
        nodes = np.arange(0, 64, 7)
        matrix = pairwise_resistance_matrix(est, nodes)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)
        k = nodes.size
        for i in range(k):
            for j in range(k):
                for l in range(k):
                    assert matrix[i, l] <= matrix[i, j] + matrix[j, l] + 1e-6

    def test_path_distances(self):
        graph = path_graph(6)
        est = CholInvEffectiveResistance(graph, epsilon=0.0, drop_tol=0.0)
        matrix = pairwise_resistance_matrix(est, np.arange(6))
        expected = np.abs(np.subtract.outer(np.arange(6), np.arange(6))).astype(float)
        assert np.allclose(matrix, expected, atol=1e-8)

    def test_cross_component_inf(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        est = CholInvEffectiveResistance(g, epsilon=0.0, drop_tol=0.0)
        matrix = pairwise_resistance_matrix(est, np.array([0, 1, 2]))
        assert matrix[0, 2] == np.inf
        assert np.isfinite(matrix[0, 1])

    def test_single_node(self, mesh_estimator):
        _, est = mesh_estimator
        matrix = pairwise_resistance_matrix(est, np.array([5]))
        assert matrix.shape == (1, 1)
        assert matrix[0, 0] == 0.0


class TestNearestNeighbours:
    def test_path_neighbours_in_order(self):
        graph = path_graph(9)
        est = CholInvEffectiveResistance(graph, epsilon=0.0, drop_tol=0.0)
        ids, distances = electrically_nearest_neighbours(
            est, 4, candidates=[0, 1, 2, 3, 5, 6, 7, 8], k=3
        )
        assert set(ids.tolist()) == {3, 5, 2} or set(ids.tolist()) == {3, 5, 6}
        assert np.all(np.diff(distances) >= -1e-12)

    def test_k_capped_at_candidates(self, mesh_estimator):
        _, est = mesh_estimator
        ids, distances = electrically_nearest_neighbours(
            est, 0, candidates=[1, 2], k=10
        )
        assert ids.shape == (2,)

    def test_requires_candidates(self, mesh_estimator):
        _, est = mesh_estimator
        with pytest.raises(ValueError):
            electrically_nearest_neighbours(est, 0, candidates=[])
