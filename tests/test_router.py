"""Tests for SLA routing (repro.service.router + service wiring).

The four router-semantics guarantees:

* a request with no SLA is served bit-identically to a service without
  tiers (the router is never consulted);
* tolerance violations escalate — pairs a tier cannot keep within
  ``rel_tol`` flow through the normal exact path;
* mixed-SLA traffic splits per tier: the async front-end groups requests
  by SLA, and each batch's report records who served what;
* cached exact results short-circuit — a warm result LRU answers before
  any tier runs, and tier answers never enter that cache.
"""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, build_engine
from repro.estimators.landmark import LandmarkEffectiveResistance
from repro.graphs.generators import fe_mesh_2d
from repro.service import (
    SLA,
    AsyncResistanceService,
    CalibrationProfile,
    QueryRouter,
    ResistanceService,
    TierCalibration,
    calibrate,
)


@pytest.fixture(scope="module")
def mesh():
    return fe_mesh_2d(9, 10, seed=4)


@pytest.fixture(scope="module")
def pairs(mesh):
    rng = np.random.default_rng(0)
    return rng.integers(0, mesh.num_nodes, size=(250, 2))


@pytest.fixture
def service(mesh):
    return ResistanceService(mesh, config=EngineConfig(num_landmarks=24, seed=0))


# ----------------------------------------------------------------------
# SLA / calibration plumbing
# ----------------------------------------------------------------------

def test_sla_validation():
    assert SLA().is_default
    assert not SLA(rel_tol=0.1).is_default
    with pytest.raises(ValueError):
        SLA(rel_tol=0.0)
    with pytest.raises(ValueError):
        SLA(latency_budget=-1.0)


def test_threshold_inverts_the_error_curve():
    calibration = TierCalibration(
        tier="landmark",
        scores=np.array([0.01, 0.1, 0.5]),
        prefix_max_error=np.array([0.001, 0.02, 0.5]),
        seconds_per_pair=1e-6,
    )
    # margin 0.8: target 0.04 admits the first two scores
    assert calibration.threshold_for(0.05, min_support=1) == pytest.approx(0.1)
    # nothing on the curve is good enough for a 5e-4 tolerance
    assert calibration.threshold_for(5e-4, min_support=1) is None
    assert calibration.threshold_for(10.0, min_support=1) == pytest.approx(0.5)
    # default support requirement refuses a three-point curve outright:
    # a threshold read off a handful of samples says nothing about the tail
    assert calibration.threshold_for(10.0) is None


def test_calibration_profile_round_trips_through_json(service, tmp_path):
    profile = service.enable_tiers(tiers=("landmark",), calibration_pairs=256)
    assert "landmark" in profile.tiers and profile.num_samples > 0
    path = profile.save(tmp_path / "engine.npz.calibration.json")
    loaded = CalibrationProfile.load(path)
    assert loaded.to_dict() == profile.to_dict()
    original = profile.tiers["landmark"]
    restored = loaded.tiers["landmark"]
    np.testing.assert_array_equal(original.scores, restored.scores)
    np.testing.assert_array_equal(
        original.prefix_max_error, restored.prefix_max_error
    )


def test_default_sidecar_path():
    assert str(CalibrationProfile.default_path("/x/engine.npz")).endswith(
        "engine.npz.calibration.json"
    )


# ----------------------------------------------------------------------
# router semantics
# ----------------------------------------------------------------------

def test_no_sla_is_bit_identical_to_exact(service, mesh, pairs):
    plain = ResistanceService(mesh, config=EngineConfig(num_landmarks=24, seed=0))
    baseline = plain.query_pairs(pairs)
    service.enable_tiers(tiers=("landmark",), calibration_pairs=256)
    np.testing.assert_array_equal(service.query_pairs(pairs), baseline)
    # and the report shows no tier accounting at all on the plain path
    _, report = service.query_pairs_with_report(pairs)
    assert report.tier_rows == {}
    assert all(t.tier == "exact" for t in report.subbatch_timings)


def test_sla_within_tolerance_and_violations_escalate(mesh, pairs):
    # few landmarks → wide intervals → plenty of escalation at 1%
    service = ResistanceService(
        mesh, config=EngineConfig(num_landmarks=4, seed=0),
        result_cache_size=0,
    )
    truth = service.query_pairs(pairs)
    service.enable_tiers(tiers=("landmark",), calibration_pairs=256)
    rel_tol = 0.01
    values, report = service.query_pairs_with_report(pairs, rel_tol=rel_tol)
    finite = np.isfinite(truth) & (truth > 0)
    rel = np.abs(values[finite] - truth[finite]) / truth[finite]
    assert rel.max() <= rel_tol
    assert report.tier_rows.get("exact", 0) > 0          # violations escalated
    assert report.tier_rows.get("landmark", 0) > 0       # easy pairs kept
    tiers_seen = {t.tier for t in report.subbatch_timings}
    assert {"landmark", "exact"} <= tiers_seen
    assert report.unique_misses == sum(report.tier_rows.values())


def test_sla_without_tiers_raises(service, pairs):
    with pytest.raises(ValueError, match="enable_tiers"):
        service.query_pairs(pairs, rel_tol=0.1)


def test_refresh_drops_the_router(service, mesh, pairs):
    service.enable_tiers(tiers=("landmark",), calibration_pairs=128)
    service.query_pairs(pairs, rel_tol=0.25)
    far = mesh.num_nodes - 1
    service.refresh_after_edge_update(edges=[(0, far)], weights=[1.0])
    with pytest.raises(ValueError, match="enable_tiers"):
        service.query_pairs(pairs, rel_tol=0.25)
    # re-enabling against the rebuilt engine works
    service.enable_tiers(tiers=("landmark",), calibration_pairs=128)
    assert service.query_pairs(pairs, rel_tol=0.25).shape == (pairs.shape[0],)


def test_cached_exact_results_short_circuit(service, pairs):
    service.enable_tiers(tiers=("landmark",), calibration_pairs=256)
    exact = service.query_pairs(pairs)            # warms the result LRU
    values, report = service.query_pairs_with_report(pairs, rel_tol=0.25)
    # every non-trivial pair came from the cache: nothing routed, nothing
    # escalated, and the answers are the cached exact ones bit-for-bit
    np.testing.assert_array_equal(values, exact)
    assert report.unique_misses == 0
    assert report.cache_hit_rows > 0
    assert report.tier_rows.get("landmark", 0) == 0


def test_tier_answers_never_enter_the_exact_cache(mesh, pairs):
    service = ResistanceService(mesh, config=EngineConfig(num_landmarks=24, seed=0))
    reference = ResistanceService(
        mesh, config=EngineConfig(num_landmarks=24, seed=0)
    ).query_pairs(pairs)
    service.enable_tiers(tiers=("landmark",), calibration_pairs=256)
    _, report = service.query_pairs_with_report(pairs, rel_tol=0.5)
    assert report.tier_rows.get("landmark", 0) > 0  # something was approximate
    # a later plain request must see exact answers, not cached approximations
    np.testing.assert_array_equal(service.query_pairs(pairs), reference)


def test_latency_budget_downgrades_exact_requests(mesh, pairs):
    engine = build_engine(mesh, EngineConfig())
    landmark = LandmarkEffectiveResistance.from_base_engine(
        engine, num_landmarks=24
    )
    # handcrafted profile so the budget decision is deterministic: exact
    # is "slow" (1 s/pair), the landmark tier is "fast"
    profile = CalibrationProfile(
        tiers={
            "landmark": TierCalibration(
                tier="landmark",
                scores=np.array([0.0, 1.0]),
                prefix_max_error=np.array([0.0, 0.1]),
                seconds_per_pair=1e-9,
            )
        },
        exact_seconds_per_pair=1.0,
        num_samples=2,
    )
    router = QueryRouter(profile, {"landmark": landmark})
    batch = pairs[:64]
    # budget too small for exact → the most accurate fitting tier serves all
    tight = router.serve(batch, SLA(latency_budget=0.5))
    assert bool(tight.served.all())
    assert tight.tier_rows == {"landmark": batch.shape[0]}
    # generous budget → exact fits → everything escalates untouched
    loose = router.serve(batch, SLA(latency_budget=1e6))
    assert not loose.served.any() and loose.tier_rows == {}
    # impossible budget → nothing fits → exact is the honest fallback
    hopeless = QueryRouter(
        CalibrationProfile(
            tiers=dict(profile.tiers),
            exact_seconds_per_pair=1.0,
            num_samples=2,
        ),
        {"landmark": landmark},
    )
    hopeless.profile.tiers["landmark"].seconds_per_pair = 1e6
    assert not hopeless.serve(batch, SLA(latency_budget=1e-3)).served.any()


def test_latency_budget_vetoes_slow_tiers_under_rel_tol(mesh, pairs):
    engine = build_engine(mesh, EngineConfig())
    landmark = LandmarkEffectiveResistance.from_base_engine(
        engine, num_landmarks=24
    )
    slow = TierCalibration(
        tier="landmark",
        scores=np.array([0.0, 1.0]),
        prefix_max_error=np.array([0.0, 0.0]),
        seconds_per_pair=1e6,       # would accept everything, but too slow
    )
    profile = CalibrationProfile(
        tiers={"landmark": slow}, exact_seconds_per_pair=1.0, num_samples=2
    )
    router = QueryRouter(profile, {"landmark": landmark})
    result = router.serve(pairs[:32], SLA(rel_tol=0.5, latency_budget=1e-3))
    assert not result.served.any()  # the tier was vetoed, all escalate


def test_calibrate_measures_every_tier(mesh):
    engine = build_engine(mesh, EngineConfig())
    tiers = {
        "landmark": LandmarkEffectiveResistance.from_base_engine(
            engine, num_landmarks=12
        )
    }
    profile = calibrate(engine, tiers, num_pairs=128, seed=1)
    calibration = profile.tiers["landmark"]
    assert calibration.scores.shape == calibration.prefix_max_error.shape
    assert np.all(np.diff(calibration.scores) >= 0)           # sorted
    assert np.all(np.diff(calibration.prefix_max_error) >= 0)  # prefix max
    assert profile.exact_seconds_per_pair > 0
    assert calibration.seconds_per_pair > 0


# ----------------------------------------------------------------------
# async front-end: mixed-SLA batches split per tier
# ----------------------------------------------------------------------

def test_async_mixed_sla_batches_split_per_tier(mesh, pairs):
    # cache disabled so the no-SLA batch cannot pre-answer the SLA ones
    service = ResistanceService(
        mesh, config=EngineConfig(num_landmarks=24, seed=0),
        result_cache_size=0,
    )
    baseline = ResistanceService(
        mesh, config=EngineConfig(num_landmarks=24, seed=0)
    ).query_pairs(pairs)
    service.enable_tiers(tiers=("landmark",), calibration_pairs=256)
    with AsyncResistanceService(service, batch_window=0.05) as front:
        exact_future = front.submit(pairs)
        loose_a = front.submit(pairs, rel_tol=0.5)
        loose_b = front.submit(pairs[:50], rel_tol=0.5)
        tight = front.submit(pairs, rel_tol=1e-9)
        exact_values = exact_future.result()
        loose_a.result(), loose_b.result(), tight.result()
        # 3 distinct SLAs → 3 engine batches, though 4 requests were queued
        assert front.stats.batches == 3
        assert front.stats.requests == 4
        reports = list(front.reports)
    np.testing.assert_array_equal(exact_values, baseline)
    no_sla = [r for r in reports if not r.tier_rows]
    routed = [r for r in reports if r.tier_rows]
    assert len(no_sla) == 1 and len(routed) == 2
    assert any(r.tier_rows.get("landmark", 0) > 0 for r in routed)
