"""Tests for Schur-complement reduction exactness."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs.generators import fe_mesh_2d, grid_2d, path_graph
from repro.graphs.laplacian import laplacian
from repro.reduction.schur import laplacian_to_edges, schur_reduce


class TestExactness:
    def test_path_reduces_to_series_resistor(self):
        """Eliminating the middle of a unit path leaves conductance 1/(n-1)."""
        g = path_graph(5)
        lap = laplacian(g)
        red = schur_reduce(lap, keep=np.array([0, 4]))
        expected = 0.25 * np.array([[1.0, -1.0], [-1.0, 1.0]])
        assert np.allclose(red.reduced, expected)

    def test_port_voltages_preserved(self):
        """Solves on the reduced system match the full solve exactly."""
        g = fe_mesh_2d(7, 7, seed=0)
        lap = laplacian(g).tolil()
        lap[0, 0] += 1.0  # ground node 0 so the system is nonsingular
        lap = lap.tocsc()
        keep = np.array([0, 5, 11, 23, 37, 48])
        red = schur_reduce(lap, keep)
        rng = np.random.default_rng(1)
        rhs = rng.normal(size=g.num_nodes)
        rhs -= rhs.mean()
        full = np.linalg.solve(lap.toarray(), rhs)
        reduced_solution = np.linalg.solve(red.reduced, red.reduce_rhs(rhs))
        assert np.allclose(reduced_solution, full[keep], atol=1e-9)

    def test_interior_recovery(self):
        g = grid_2d(5, 5)
        lap = laplacian(g).tolil()
        lap[0, 0] += 2.0
        lap = lap.tocsc()
        keep = np.array([0, 4, 20, 24])
        red = schur_reduce(lap, keep, keep_interior_solver=True)
        rng = np.random.default_rng(2)
        rhs = rng.normal(size=25)
        full = np.linalg.solve(lap.toarray(), rhs)
        v_keep = np.linalg.solve(red.reduced, red.reduce_rhs(rhs))
        v_interior = red.recover_interior(v_keep, rhs[red.eliminated])
        assert np.allclose(v_interior, full[red.eliminated], atol=1e-9)

    def test_keep_everything_is_identity(self):
        g = grid_2d(3, 3)
        lap = laplacian(g)
        red = schur_reduce(lap, keep=np.arange(9))
        assert np.allclose(red.reduced, lap.toarray())
        assert red.eliminated.size == 0


class TestDivider:
    def test_current_divider_properties(self):
        """W = −X is nonnegative with column... row sums ≤ 1 on Laplacians."""
        g = fe_mesh_2d(6, 6, seed=3)
        lap = laplacian(g)
        keep = np.arange(0, 36, 5)
        red = schur_reduce(lap, keep)
        assert red.divider.min() >= -1e-10
        row_sums = red.divider.sum(axis=1)
        assert np.all(row_sums <= 1.0 + 1e-9)

    def test_lump_preserves_total_without_shunts(self):
        """With no ground shunts all interior mass reaches kept nodes."""
        g = grid_2d(6, 6)
        lap = laplacian(g)
        keep = np.array([0, 35])
        red = schur_reduce(lap, keep)
        values = np.abs(np.random.default_rng(4).normal(size=36))
        lumped = red.lump_values(values)
        assert np.isclose(lumped.sum(), values.sum(), rtol=1e-9)


class TestFloatingAndEdges:
    def test_floating_interior_dropped(self):
        """A disconnected interior island is dropped, not inverted."""
        lap_block = laplacian(path_graph(3)).toarray()  # nodes 0,1,2
        full = np.zeros((5, 5))
        full[:3, :3] = lap_block
        full[0, 0] += 1.0
        # nodes 3, 4 form a floating pair
        full[3, 3] = full[4, 4] = 1.0
        full[3, 4] = full[4, 3] = -1.0
        red = schur_reduce(sp.csc_matrix(full), keep=np.array([0, 2]))
        assert np.array_equal(np.sort(red.dropped), [3, 4])
        assert red.reduced.shape == (2, 2)

    def test_requires_nonempty_keep(self):
        g = grid_2d(3, 3)
        with pytest.raises(ValueError):
            schur_reduce(laplacian(g), keep=np.array([], dtype=np.int64))


class TestLaplacianToEdges:
    def test_round_trip(self):
        g = fe_mesh_2d(5, 5, seed=5)
        lap = laplacian(g)
        red = schur_reduce(lap, keep=np.arange(0, 25, 3))
        heads, tails, conductances, shunts = laplacian_to_edges(red.reduced)
        rebuilt = np.zeros_like(red.reduced)
        for a, b, w in zip(heads, tails, conductances):
            rebuilt[a, b] -= w
            rebuilt[b, a] -= w
            rebuilt[a, a] += w
            rebuilt[b, b] += w
        rebuilt += np.diag(shunts)
        assert np.allclose(rebuilt, red.reduced, atol=1e-8)

    def test_shunt_detection(self):
        """Grounded diagonal excess must surface as shunts."""
        dense = np.array([[2.0, -1.0], [-1.0, 1.5]])
        heads, tails, conductances, shunts = laplacian_to_edges(dense)
        assert conductances.tolist() == [1.0]
        assert np.allclose(shunts, [1.0, 0.5])
