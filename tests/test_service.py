"""Cross-engine regression suite and ResistanceService behaviour tests.

The cross-engine matrix: ``CholInvEffectiveResistance`` (blocked and
reference Alg. 2 kernels), ``ExactEffectiveResistance``, and
``ResistanceService`` over both engines must agree on the structural
answers — ``inf`` across components, ``0.0`` on the diagonal — and the two
Alg. 2 kernels must produce the *identical* ``Z̃``.
"""

import numpy as np
import pytest

from repro.apps.incremental import perturb_edge_weights, run_edge_update_flow
from repro.cholesky.incomplete import ichol
from repro.cholesky.numeric import cholesky
from repro.core.approx_inverse import approximate_inverse
from repro.core.effective_resistance import (
    CholInvEffectiveResistance,
    ExactEffectiveResistance,
    dense_pinv_resistance,
)
from repro.graphs.generators import fe_mesh_2d, grid_2d
from repro.graphs.graph import Graph
from repro.graphs.laplacian import grounded_laplacian
from repro.service import ResistanceService


def _engines(graph):
    return {
        "cholinv-blocked": CholInvEffectiveResistance(graph, mode="blocked"),
        "cholinv-reference": CholInvEffectiveResistance(graph, mode="reference"),
        "exact": ExactEffectiveResistance(graph),
        "service-cholinv": ResistanceService(graph),
        "service-exact": ResistanceService(graph, method="exact"),
    }


class TestKernelsIdentical:
    # ε = 2 is degenerate but legal: it exercises the blocked kernel's slow
    # path where even diagonal entries become truncation-eligible
    @pytest.mark.parametrize("epsilon", [0.0, 1e-3, 5e-2, 0.5, 2.0])
    def test_blocked_matches_reference_complete(self, epsilon):
        graph = fe_mesh_2d(9, 8, seed=3)
        matrix, _ = grounded_laplacian(graph, 1.0)
        factor = cholesky(matrix, ordering="amd")
        z_ref, s_ref = approximate_inverse(factor.lower, epsilon=epsilon, mode="reference")
        z_blk, s_blk = approximate_inverse(factor.lower, epsilon=epsilon, mode="blocked")
        assert np.array_equal(z_ref.indptr, z_blk.indptr)
        assert np.array_equal(z_ref.indices, z_blk.indices)
        assert np.allclose(z_ref.data, z_blk.data, rtol=1e-12, atol=0.0)
        assert s_ref.columns_truncated == s_blk.columns_truncated
        assert s_ref.columns_kept_whole == s_blk.columns_kept_whole

    @pytest.mark.parametrize("epsilon", [1e-3, 5e-2])
    def test_blocked_matches_reference_incomplete(self, epsilon):
        graph = grid_2d(14, 11, jitter=0.3, seed=9)
        matrix, _ = grounded_laplacian(graph, 1.0)
        factor = ichol(matrix, drop_tol=1e-3, ordering="amd")
        z_ref, _ = approximate_inverse(factor.lower, epsilon=epsilon, mode="reference")
        z_blk, _ = approximate_inverse(factor.lower, epsilon=epsilon, mode="blocked")
        assert np.array_equal(z_ref.indptr, z_blk.indptr)
        assert np.array_equal(z_ref.indices, z_blk.indices)
        assert np.allclose(z_ref.data, z_blk.data, rtol=1e-12, atol=0.0)

    def test_engine_mode_knob_same_answers(self, weighted_mesh):
        pairs = weighted_mesh.edge_array()
        blocked = CholInvEffectiveResistance(weighted_mesh, mode="blocked")
        reference = CholInvEffectiveResistance(weighted_mesh, mode="reference")
        assert np.allclose(
            blocked.query_pairs(pairs), reference.query_pairs(pairs), rtol=1e-12
        )

    def test_unknown_mode_raises(self, weighted_mesh):
        matrix, _ = grounded_laplacian(weighted_mesh, 1.0)
        factor = ichol(matrix, drop_tol=1e-3, ordering="amd")
        with pytest.raises(ValueError):
            approximate_inverse(factor.lower, mode="banana")


class TestCrossEngineStructure:
    def test_cross_component_pairs_are_inf(self, two_components):
        pairs = [(0, 3), (1, 4), (2, 5)]
        for name, engine in _engines(two_components).items():
            values = engine.query_pairs(pairs)
            assert np.all(np.isinf(values)), name

    def test_same_node_pairs_are_zero(self, two_components):
        pairs = [(0, 0), (4, 4)]
        for name, engine in _engines(two_components).items():
            assert np.array_equal(engine.query_pairs(pairs), [0.0, 0.0]), name

    def test_within_component_values_agree(self, two_components):
        pairs = [(0, 1), (3, 5)]
        truth = dense_pinv_resistance(two_components, pairs)
        for name, engine in _engines(two_components).items():
            assert np.allclose(engine.query_pairs(pairs), truth, rtol=1e-6), name

    def test_engines_agree_on_mesh(self, weighted_mesh):
        pairs = weighted_mesh.edge_array()
        truth = ExactEffectiveResistance(weighted_mesh).query_pairs(pairs)
        engines = _engines(weighted_mesh)
        for name in ("cholinv-blocked", "cholinv-reference", "service-cholinv"):
            values = engines[name].query_pairs(pairs)
            rel = np.abs(values - truth) / truth
            assert rel.max() < 2e-2, name
        assert np.allclose(engines["service-exact"].query_pairs(pairs), truth)


class TestServiceCaching:
    def test_repeat_queries_hit_cache(self, weighted_mesh):
        service = ResistanceService(weighted_mesh)
        pairs = [(0, 5), (1, 7), (5, 0)]
        first = service.query_pairs(pairs)
        # (5, 0) normalises to (0, 5) and dedupes into a single engine miss
        assert service.stats.result_misses == 2
        assert first[0] == first[2]
        second = service.query_pairs(pairs)
        assert np.array_equal(first, second)
        assert service.stats.result_hits == 3
        assert service.stats.hit_rate >= 0.5

    def test_single_query_uses_column_cache(self, weighted_mesh):
        service = ResistanceService(weighted_mesh)
        value = service.query(0, 7)
        assert service.stats.column_misses == 2
        # a different pair sharing node 0 reuses its hot column
        service.query(0, 9)
        assert service.stats.column_hits == 1
        exact = ExactEffectiveResistance(weighted_mesh).query(0, 7)
        assert value == pytest.approx(exact, rel=2e-2)

    def test_result_cache_capacity_zero_disables_caching(self, weighted_mesh):
        service = ResistanceService(weighted_mesh, result_cache_size=0)
        service.query(0, 5)
        service.query(0, 5)
        assert service.stats.result_hits == 0

    def test_top_k_central_edges(self, weighted_mesh):
        service = ResistanceService(weighted_mesh)
        edges, centrality = service.top_k_central_edges(5)
        assert edges.shape == (5,) and centrality.shape == (5,)
        assert np.all(np.diff(centrality) <= 0)
        full = weighted_mesh.weights * service.all_edge_resistances()
        assert centrality[0] == pytest.approx(full.max())

    def test_top_k_larger_than_edge_count(self, tiny_path):
        service = ResistanceService(tiny_path)
        edges, _ = service.top_k_central_edges(100)
        assert edges.shape[0] == tiny_path.num_edges


class TestServiceRefresh:
    def test_refresh_with_new_graph_changes_answers(self, weighted_mesh):
        service = ResistanceService(weighted_mesh, epsilon=1e-5, drop_tol=1e-5)
        before = service.query(0, 7)
        updated = perturb_edge_weights(weighted_mesh, fraction=0.5, seed=2)
        stats = service.refresh_after_edge_update(updated)
        assert stats.invalidated_results >= 1
        after = service.query(0, 7)
        truth = ExactEffectiveResistance(updated).query(0, 7)
        assert after == pytest.approx(truth, rel=2e-2)
        assert after != before
        assert service.stats.refreshes == 1

    def test_refresh_with_edge_list_adds_conductance(self, tiny_path):
        service = ResistanceService(tiny_path, method="exact")
        before = service.query(0, 4)
        # a parallel unit edge over (0, 1) halves that segment's resistance
        service.refresh_after_edge_update(edges=[(0, 1)], weights=[1.0])
        after = service.query(0, 4)
        assert after == pytest.approx(before - 0.5)

    def test_refresh_connects_components(self, two_components):
        service = ResistanceService(two_components)
        assert np.isinf(service.query(0, 3))
        service.refresh_after_edge_update(edges=[(2, 3)], weights=[2.0])
        assert np.isfinite(service.query(0, 3))

    def test_run_edge_update_flow(self, weighted_mesh):
        service = ResistanceService(weighted_mesh, epsilon=1e-5, drop_tol=1e-5)
        outcome = run_edge_update_flow(service, modified_fraction=0.2, seed=4)
        assert outcome.refresh_seconds >= 0.0
        assert outcome.max_rel_error < 2e-2
        assert outcome.updated_graph.num_edges == weighted_mesh.num_edges

    def test_refresh_rejects_both_graph_and_edges(self, tiny_path):
        service = ResistanceService(tiny_path)
        with pytest.raises(ValueError):
            service.refresh_after_edge_update(tiny_path, edges=[(0, 1)])


class TestServiceValidation:
    def test_unknown_method(self, tiny_path):
        with pytest.raises(ValueError):
            ResistanceService(tiny_path, method="voodoo")

    def test_bad_pairs_shape(self, tiny_path):
        service = ResistanceService(tiny_path)
        with pytest.raises(ValueError):
            service.query_pairs(np.zeros((2, 3)))

    def test_isolated_declared_nodes_served(self):
        # ids preserved verbatim (the read_edgelist contract): isolated
        # nodes exist and cross-component queries answer inf
        graph = Graph.from_edges(6, [(0, 5)])
        service = ResistanceService(graph)
        assert np.isinf(service.query(0, 3))
        assert service.query(0, 5) == pytest.approx(1.0)
