"""AsyncResistanceService: futures, asyncio, micro-batch coalescing."""

import asyncio
import concurrent.futures
import threading

import numpy as np
import pytest

from repro.core.engine import EngineConfig
from repro.graphs.generators import grid_2d
from repro.graphs.graph import Graph
from repro.service import (
    AsyncResistanceService,
    ResistanceService,
    ThreadedExecutor,
)


@pytest.fixture
def multi_component() -> Graph:
    return Graph.disjoint_union(
        [grid_2d(5, 5, jitter=0.3, seed=s) for s in range(3)]
    )


@pytest.fixture
def front(multi_component):
    service = ResistanceService(
        multi_component, config=EngineConfig(sharded=True)
    )
    with AsyncResistanceService(service, batch_window=0.003) as front:
        yield front


class TestSubmit:
    def test_future_resolves_to_answers(self, front):
        pairs = [(0, 5), (1, 7), (0, 30)]
        expected = front.service.query_pairs(pairs)
        got = front.submit(pairs).result(timeout=10)
        assert np.array_equal(got, expected)

    def test_empty_batch_immediate(self, front):
        future = front.submit([])
        assert future.done()
        assert future.result().shape == (0,)

    def test_burst_coalesces(self, multi_component):
        service = ResistanceService(
            multi_component, config=EngineConfig(sharded=True)
        )
        with AsyncResistanceService(service, batch_window=0.05) as front:
            futures = [front.submit([(0, i)]) for i in range(1, 11)]
            results = [f.result(timeout=10) for f in futures]
        assert front.stats.requests == 10
        assert front.stats.batches < 10  # the window merged the burst
        assert front.stats.coalescing_ratio > 1.0
        expected = service.query_pairs([(0, i) for i in range(1, 11)])
        got = np.concatenate(results)
        assert np.array_equal(got, expected)

    def test_bad_request_fails_alone(self, front):
        good = front.submit([(0, 1)])
        with pytest.raises(ValueError, match="node id 999"):
            front.submit([(0, 999)])
        assert np.isfinite(good.result(timeout=10)[0])

    def test_window_zero_still_serves(self, multi_component):
        service = ResistanceService(multi_component)
        with AsyncResistanceService(service, batch_window=0.0) as front:
            values = front.query_pairs([(0, 3), (2, 2)])
        assert values.shape == (2,)
        assert values[1] == 0.0

    def test_max_batch_pairs_flushes_early(self, multi_component):
        service = ResistanceService(multi_component)
        with AsyncResistanceService(
            service, batch_window=5.0, max_batch_pairs=4
        ) as front:
            futures = [front.submit([(0, i), (1, i)]) for i in range(1, 4)]
            # 6 pairs > max 4: the loop must flush well before the 5s window
            results = [f.result(timeout=10) for f in futures]
        assert all(r.shape == (2,) for r in results)


class TestAsyncio:
    def test_aquery_pairs(self, front):
        pairs = [(0, 7), (30, 31)]
        expected = front.service.query_pairs(pairs)

        async def go():
            return await front.aquery_pairs(pairs)

        assert np.array_equal(asyncio.run(go()), expected)

    def test_aquery_single(self, front):
        expected = front.service.query(0, 7)

        async def go():
            return await front.aquery(0, 7)

        assert asyncio.run(go()) == expected

    def test_gather_many_clients(self, front):
        n = front.service.graph.num_nodes

        async def client(i):
            return await front.aquery_pairs([(i, i + 1), (i, n - 1)])

        async def go():
            return await asyncio.gather(*[client(i) for i in range(8)])

        results = asyncio.run(go())
        direct = front.service.query_pairs(
            [(i, j) for i in range(8) for j in (i + 1, n - 1)]
        )
        assert np.array_equal(np.concatenate(results), direct)


class TestLifecycle:
    def test_submit_after_close_raises(self, multi_component):
        service = ResistanceService(multi_component)
        front = AsyncResistanceService(service, batch_window=0.0)
        front.close()
        assert front.closed
        with pytest.raises(RuntimeError, match="closed"):
            front.submit([(0, 1)])

    def test_close_drains_pending(self, multi_component):
        service = ResistanceService(multi_component)
        front = AsyncResistanceService(service, batch_window=0.2)
        futures = [front.submit([(0, i)]) for i in range(1, 6)]
        front.close(timeout=10)  # must flush the open window, not drop it
        for future in futures:
            assert future.result(timeout=1).shape == (1,)

    def test_close_idempotent(self, multi_component):
        front = AsyncResistanceService(
            ResistanceService(multi_component), batch_window=0.0
        )
        front.close()
        front.close()

    def test_from_graph_builds_stack(self, multi_component):
        with AsyncResistanceService.from_graph(
            multi_component,
            workers=2,
            batch_window=0.001,
            config=EngineConfig(sharded=True),
        ) as front:
            assert isinstance(front.service.executor, ThreadedExecutor)
            value = front.submit([(0, 5)]).result(timeout=10)
        assert np.isfinite(value[0])

    def test_cancelled_future_skipped(self, multi_component):
        service = ResistanceService(multi_component)
        front = AsyncResistanceService(service, batch_window=0.5)
        hold = front.submit([(0, 1)])
        victim = front.submit([(0, 2)])
        assert victim.cancel()
        front.close(timeout=10)
        assert hold.result(timeout=1).shape == (1,)
        with pytest.raises(concurrent.futures.CancelledError):
            victim.result(timeout=1)

    def test_reports_recorded(self, multi_component):
        service = ResistanceService(multi_component)
        with AsyncResistanceService(service, batch_window=0.01) as front:
            front.submit([(0, 1), (0, 2)]).result(timeout=10)
        assert len(front.reports) >= 1
        assert front.reports[-1].num_queries >= 2

    def test_errors_propagate_to_waiters(self, multi_component, monkeypatch):
        service = ResistanceService(multi_component)

        def explode(pairs, rel_tol=None, latency_budget=None):
            raise RuntimeError("engine on fire")

        with AsyncResistanceService(service, batch_window=0.02) as front:
            monkeypatch.setattr(
                service, "query_pairs_with_report", explode
            )
            futures = [front.submit([(0, 1)]), front.submit([(0, 2)])]
            for future in futures:
                with pytest.raises(RuntimeError, match="on fire"):
                    future.result(timeout=10)

    def test_batcher_thread_named(self, front):
        names = [t.name for t in threading.enumerate()]
        assert "resistance-batcher" in names
