"""Concurrency hammer: many threads sharing one ResistanceService.

Rebuilds are deterministic, so refreshing with the *same* graph never
changes any answer — which makes "mix queries and refreshes from many
threads" a strong check: every thread must see bit-identical values to a
fresh single-threaded engine throughout, and the locked counters must not
lose a single update.
"""

import threading

import numpy as np
import pytest

from repro.core.engine import EngineConfig, build_engine
from repro.graphs.generators import grid_2d
from repro.graphs.graph import Graph
from repro.service import ResistanceService, ThreadedExecutor


@pytest.fixture
def multi_component() -> Graph:
    return Graph.disjoint_union(
        [grid_2d(5, 5, jitter=0.3, seed=s) for s in range(3)]
    )


def _hammer(service, graph, reference, pairs, threads, reps):
    """Run mixed traffic from ``threads`` workers; collect mismatches."""
    errors = []
    barrier = threading.Barrier(threads)

    def worker(tid):
        rng = np.random.default_rng(tid)
        try:
            barrier.wait(timeout=30)
            for rep in range(reps):
                kind = (tid + rep) % 4
                if kind == 0:
                    got = service.query_pairs(pairs)
                    if not np.array_equal(got, reference):
                        errors.append(f"t{tid} rep{rep}: batch mismatch")
                elif kind == 1:
                    i = int(rng.integers(0, pairs.shape[0]))
                    p, q = int(pairs[i, 0]), int(pairs[i, 1])
                    got = service.query(p, q)
                    if got != reference[i]:
                        errors.append(f"t{tid} rep{rep}: single mismatch")
                elif kind == 2:
                    shuffled = pairs[rng.permutation(pairs.shape[0])]
                    got = service.query_pairs(shuffled)
                    want = service.engine.query_pairs(shuffled)
                    if not np.array_equal(got, want):
                        errors.append(f"t{tid} rep{rep}: shuffle mismatch")
                else:
                    # same graph -> deterministic rebuild -> same answers
                    service.refresh_after_edge_update(graph)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(f"t{tid}: {type(exc).__name__}: {exc}")

    workers = [
        threading.Thread(target=worker, args=(tid,)) for tid in range(threads)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=120)
    return errors


@pytest.mark.parametrize("executor", [None, ThreadedExecutor(3)])
def test_hammer_mixed_traffic_bit_identical(multi_component, executor):
    threads, reps = 6, 8
    config = EngineConfig(sharded=True)
    service = ResistanceService(
        multi_component, config=config, executor=executor
    )
    fresh = build_engine(multi_component, config)
    rng = np.random.default_rng(99)
    n = multi_component.num_nodes
    pairs = np.column_stack([
        rng.integers(0, n, size=64),
        rng.integers(0, n, size=64),
    ])
    reference = fresh.query_pairs(pairs)

    errors = _hammer(service, multi_component, reference, pairs, threads, reps)
    assert errors == []

    # counters took every update: queries is incremented once per row /
    # call under the lock, so the exact total is a lost-update detector
    expected_refreshes = sum(
        1
        for tid in range(threads)
        for rep in range(reps)
        if (tid + rep) % 4 == 3
    )
    expected_queries = sum(
        64 if (tid + rep) % 4 in (0, 2) else 1
        for tid in range(threads)
        for rep in range(reps)
        if (tid + rep) % 4 != 3
    )
    assert service.stats.refreshes == expected_refreshes
    assert service.stats.queries == expected_queries
    # post-hammer, the service still answers correctly single-threaded
    assert np.array_equal(service.query_pairs(pairs), reference)


def test_lazy_shards_build_once_under_concurrency(multi_component):
    engine = build_engine(
        multi_component, EngineConfig(sharded=True, lazy_shards=True)
    )
    assert engine.shards_built == 0
    pairs = np.array([(0, 5), (30, 31), (60, 61)])
    expected = build_engine(
        multi_component, EngineConfig(sharded=True)
    ).query_pairs(pairs)
    results = [None] * 8
    barrier = threading.Barrier(8)

    def worker(i):
        barrier.wait(timeout=30)
        results[i] = engine.query_pairs(pairs)

    workers = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=60)
    assert engine.shards_built == 3  # one engine per touched component
    for got in results:
        assert got is not None and np.array_equal(got, expected)


def test_refresh_during_inflight_query_does_not_poison_cache(tiny_path):
    """An old-engine result computed across a refresh must not be cached.

    The in-flight query holds its (old) engine while a refresh with a
    *changed* graph swaps engine and clears the caches; the stale value
    is returned to its own caller but the epoch fence must keep it out
    of the post-refresh result cache.
    """
    service = ResistanceService(tiny_path, method="exact")
    entered = threading.Event()
    release = threading.Event()
    original = service.engine.query_pairs

    def stalled(pairs):
        values = original(pairs)
        entered.set()
        assert release.wait(timeout=30)
        return values

    service.engine.query_pairs = stalled
    before = ResistanceService(tiny_path, method="exact").query(0, 4)
    inflight = {}

    def old_query():
        inflight["value"] = service.query_pairs([(0, 4)])[0]

    worker = threading.Thread(target=old_query)
    worker.start()
    assert entered.wait(timeout=30)
    # a parallel (0, 1) unit edge halves that segment: R(0,4) drops 0.5
    service.refresh_after_edge_update(edges=[(0, 1)], weights=[1.0])
    release.set()
    worker.join(timeout=30)

    assert inflight["value"] == pytest.approx(before)  # stale but honest
    after = service.query_pairs([(0, 4)])[0]  # must re-answer, not hit cache
    assert after == pytest.approx(before - 0.5)
    assert service.query(0, 4) == pytest.approx(before - 0.5)


def test_concurrent_refresh_with_changed_graph_converges(multi_component):
    """Queries racing a real topology change settle on the new answers."""
    service = ResistanceService(multi_component, method="exact")
    updated = Graph(
        multi_component.num_nodes,
        np.concatenate([multi_component.heads, [0]]),
        np.concatenate([multi_component.tails, [30]]),
        np.concatenate([multi_component.weights, [1.0]]),
    )
    pairs = np.array([(0, 30), (0, 5), (26, 31)])
    stop = threading.Event()

    def churn():
        while not stop.is_set():
            service.query_pairs(pairs)
            service.query(0, 30)

    workers = [threading.Thread(target=churn) for _ in range(3)]
    for w in workers:
        w.start()
    service.refresh_after_edge_update(updated)
    stop.set()
    for w in workers:
        w.join(timeout=60)
    expected = build_engine(updated, "exact").query_pairs(pairs)
    assert np.allclose(service.query_pairs(pairs), expected)
    assert np.isfinite(service.query(0, 30))


def test_concurrent_cache_hits_consistent(multi_component):
    service = ResistanceService(multi_component)
    pairs = [(0, 5), (1, 7), (0, 24)]
    expected = service.query_pairs(pairs)
    outcomes = []

    def worker():
        for _ in range(20):
            outcomes.append(np.array_equal(service.query_pairs(pairs), expected))

    workers = [threading.Thread(target=worker) for _ in range(4)]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=60)
    assert all(outcomes)
    assert service.stats.result_hits > 0
