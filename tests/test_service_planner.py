"""Planner/executor serving path: partitioning, fan-out, validation, mmap.

The invariant everything here leans on: however a batch is partitioned
(trivial slices, cache hits, per-shard sub-batches, chunked sub-batches)
and wherever the sub-batches run (serial, thread pool), the answers are
bit-identical to one direct ``engine.query_pairs`` call.
"""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, build_engine, validate_node_ids
from repro.core.sharded import ShardedEngine
from repro.graphs.generators import grid_2d
from repro.graphs.graph import Graph
from repro.service import (
    QueryPlanner,
    ResistanceService,
    SerialExecutor,
    ThreadedExecutor,
    make_executor,
)


@pytest.fixture
def multi_component() -> Graph:
    """Four disjoint jittered grids (4 x 36 nodes)."""
    return Graph.disjoint_union(
        [grid_2d(6, 6, jitter=0.3, seed=s) for s in range(4)]
    )


@pytest.fixture
def mixed_pairs(multi_component) -> np.ndarray:
    rng = np.random.default_rng(3)
    n = multi_component.num_nodes
    pairs = np.column_stack([
        rng.integers(0, n, size=300),
        rng.integers(0, n, size=300),
    ])
    pairs[:5, 1] = pairs[:5, 0]  # guaranteed self pairs
    return pairs


class TestQueryPlanner:
    def test_structural_resolution(self, multi_component, mixed_pairs):
        engine = build_engine(multi_component, EngineConfig(sharded=True))
        plan = QueryPlanner(engine).plan(mixed_pairs)
        labels = engine.component_labels
        lo, hi = mixed_pairs.min(axis=1), mixed_pairs.max(axis=1)
        expected_trivial = int(
            np.count_nonzero((lo == hi) | (labels[lo] != labels[hi]))
        )
        assert plan.trivial_rows == expected_trivial
        assert plan.num_queries == mixed_pairs.shape[0]
        # dedup: uniques cannot exceed rows, and repeats collapse
        assert plan.num_unique <= plan.num_queries

    def test_duplicates_collapse(self, multi_component):
        engine = build_engine(multi_component, EngineConfig(sharded=True))
        pairs = [(0, 5), (5, 0), (0, 5), (1, 2)]
        plan = QueryPlanner(engine).plan(pairs)
        assert plan.num_unique == 2
        assert plan.num_misses == 2

    def test_subbatches_grouped_per_shard(self, multi_component, mixed_pairs):
        engine = build_engine(multi_component, EngineConfig(sharded=True))
        plan = QueryPlanner(engine).plan(mixed_pairs)
        subbatches = plan.build_subbatches()
        shard_ids = [s.shard_id for s in subbatches]
        assert len(shard_ids) == len(set(shard_ids))  # one task per shard
        assert all(isinstance(s.shard_id, int) for s in subbatches)
        # local ids stay inside their shard
        sizes = engine.shard_sizes()
        for s in subbatches:
            assert s.pairs.max() < sizes[s.shard_id]
        assert sum(s.num_pairs for s in subbatches) == plan.num_misses

    def test_monolithic_engine_single_subbatch(self, weighted_mesh):
        engine = build_engine(weighted_mesh, EngineConfig())
        plan = QueryPlanner(engine).plan([(0, 5), (1, 7), (2, 9)])
        subbatches = plan.build_subbatches()
        assert len(subbatches) == 1
        assert subbatches[0].shard_id is None

    def test_max_task_pairs_chunks_subbatches(self, weighted_mesh):
        engine = build_engine(weighted_mesh, EngineConfig())
        pairs = [(0, i) for i in range(1, 21)]
        plan = QueryPlanner(engine).plan(pairs)
        subbatches = plan.build_subbatches(max_task_pairs=6)
        assert len(subbatches) == 4  # ceil(20 / 6)
        assert sum(s.num_pairs for s in subbatches) == 20

    def test_cache_pass_resolves_and_counts_rows(self, weighted_mesh):
        engine = build_engine(weighted_mesh, EngineConfig())
        plan = QueryPlanner(engine).plan([(0, 5), (5, 0), (1, 7)])
        cache = {(0, 5): 2.5}
        hits = plan.resolve_from_cache(
            lambda keys: [cache.get(k) for k in keys]
        )
        assert hits == 2  # both rows of the cached unique pair
        assert plan.num_misses == 1

    def test_gather_matches_direct_engine(self, multi_component, mixed_pairs):
        engine = build_engine(multi_component, EngineConfig(sharded=True))
        plan = QueryPlanner(engine).plan(mixed_pairs)
        for subbatch in plan.build_subbatches():
            plan.scatter(subbatch, plan.execute_subbatch(subbatch))
        direct = engine.query_pairs(mixed_pairs)
        assert np.array_equal(plan.gather(), direct)


class TestExecutors:
    def test_make_executor(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        threaded = make_executor(3)
        assert isinstance(threaded, ThreadedExecutor)
        assert threaded.workers == 3
        threaded.shutdown()

    def test_map_preserves_order(self):
        with ThreadedExecutor(4) as executor:
            out = executor.map(lambda x: x * x, range(20))
        assert out == [x * x for x in range(20)]

    def test_map_propagates_exceptions(self):
        def boom(x):
            if x == 3:
                raise RuntimeError("task 3 failed")
            return x

        with ThreadedExecutor(2) as executor:
            with pytest.raises(RuntimeError, match="task 3"):
                executor.map(boom, range(6))

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(0)


class TestParallelService:
    def test_threaded_results_bit_identical(self, multi_component, mixed_pairs):
        engine = build_engine(multi_component, EngineConfig(sharded=True))
        serial = ResistanceService.from_engine(engine)
        parallel = ResistanceService.from_engine(
            engine, executor=ThreadedExecutor(4)
        )
        a, report_a = serial.query_pairs_with_report(mixed_pairs)
        b, report_b = parallel.query_pairs_with_report(mixed_pairs)
        assert np.array_equal(a, b)
        assert report_b.executor == "threaded"
        assert report_a.unique_misses == report_b.unique_misses
        assert report_b.shards_touched >= 2

    def test_report_accounting(self, multi_component, mixed_pairs):
        service = ResistanceService(
            multi_component, config=EngineConfig(sharded=True)
        )
        _, cold = service.query_pairs_with_report(mixed_pairs)
        assert cold.num_queries == mixed_pairs.shape[0]
        assert cold.cache_hit_rows == 0
        assert cold.unique_misses > 0
        assert cold.trivial_rows > 0
        _, warm = service.query_pairs_with_report(mixed_pairs)
        assert warm.unique_misses == 0
        assert warm.cache_hit_rows == cold.num_queries - cold.trivial_rows
        assert service.stats.batches == 2

    def test_chunked_monolithic_fanout_identical(self, weighted_mesh):
        engine = build_engine(weighted_mesh, EngineConfig())
        pairs = weighted_mesh.edge_array()
        plain = ResistanceService.from_engine(engine)
        chunked = ResistanceService.from_engine(
            engine, executor=ThreadedExecutor(3), max_task_pairs=7
        )
        a = plain.query_pairs(pairs)
        b, report = chunked.query_pairs_with_report(pairs)
        assert np.array_equal(a, b)
        assert len(report.subbatch_timings) > 1

    def test_from_engine_requires_config(self, weighted_mesh):
        from repro.core.effective_resistance import CholInvEffectiveResistance

        bare = CholInvEffectiveResistance(weighted_mesh)
        with pytest.raises(ValueError, match="config"):
            ResistanceService.from_engine(bare)


class TestShardedSubBatchAPI:
    def test_query_shard_matches_query_pairs(self, multi_component):
        engine = ShardedEngine(multi_component, EngineConfig(lazy_shards=True))
        pairs = np.array([(0, 5), (1, 7), (40, 41)])
        full = engine.query_pairs(pairs)
        ps, qs = pairs[:, 0], pairs[:, 1]
        rebuilt = np.full(3, np.inf)
        for shard_id, rows, local in engine.shard_subbatches(ps, qs):
            rebuilt[rows] = engine.query_shard(shard_id, local)
        assert np.array_equal(full, rebuilt)

    def test_subbatches_skip_trivial(self, two_components):
        engine = ShardedEngine(two_components, EngineConfig())
        ps = np.array([0, 0, 3])
        qs = np.array([0, 4, 3])  # self, cross, self
        assert engine.shard_subbatches(ps, qs) == []

    def test_query_shard_validates_id(self, two_components):
        engine = ShardedEngine(two_components, EngineConfig())
        with pytest.raises(ValueError, match="shard id"):
            engine.query_shard(99, [(0, 1)])


class TestBoundaryValidation:
    def test_query_pairs_names_bad_id(self, tiny_path):
        service = ResistanceService(tiny_path)
        with pytest.raises(ValueError, match=r"node id 99 .*5 nodes"):
            service.query_pairs([(0, 99)])

    def test_query_names_negative_id(self, tiny_path):
        service = ResistanceService(tiny_path)
        with pytest.raises(ValueError, match="node id -2"):
            service.query(1, -2)

    def test_validate_node_ids_accepts_valid(self):
        validate_node_ids([0, 4], 5)
        validate_node_ids(np.empty((0, 2), dtype=np.int64), 5)

    def test_engine_untouched_on_bad_request(self, tiny_path):
        service = ResistanceService(tiny_path)
        with pytest.raises(ValueError):
            service.query_pairs([(0, 1), (5, 2)])
        assert service.stats.queries == 0  # rejected before any accounting


class TestMmapPersistence:
    def test_mmap_load_bit_identical(self, weighted_mesh, tmp_path):
        from repro.core.persistence import load_engine

        engine = build_engine(weighted_mesh, EngineConfig())
        path = engine.save(tmp_path / "engine.npz")
        plain = load_engine(path)
        mapped = load_engine(path, mmap=True)
        pairs = weighted_mesh.edge_array()
        expected = engine.query_pairs(pairs)
        assert np.array_equal(plain.query_pairs(pairs), expected)
        assert np.array_equal(mapped.query_pairs(pairs), expected)

    def test_mmap_arrays_are_memory_mapped(self, weighted_mesh, tmp_path):
        from repro.core.persistence import load_engine

        path = build_engine(weighted_mesh, EngineConfig()).save(
            tmp_path / "engine.npz"
        )
        mapped = load_engine(path, mmap=True)
        assert isinstance(mapped._column_sq_norms, np.memmap)
        base = mapped.z_tilde.data
        while base.base is not None and not isinstance(base, np.memmap):
            base = base.base
        assert isinstance(base, np.memmap)
        assert not mapped.z_tilde.data.flags.writeable

    def test_service_from_saved_mmap(self, weighted_mesh, tmp_path):
        engine = build_engine(weighted_mesh, EngineConfig())
        path = engine.save(tmp_path / "engine.npz")
        cold = ResistanceService.from_saved(path)
        warm = ResistanceService.from_saved(path, mmap=True)
        assert warm.query(0, 7) == cold.query(0, 7) == pytest.approx(
            engine.query(0, 7)
        )
