"""Tests for the Wilson-sampler spanning-tree baseline."""

import numpy as np
import pytest

from repro.baselines.spanning_tree import (
    SpanningTreeEffectiveResistance,
    sample_spanning_tree,
)
from repro.core.effective_resistance import ExactEffectiveResistance
from repro.graphs.components import is_connected
from repro.graphs.generators import complete_graph, cycle_graph, fe_mesh_2d, path_graph
from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng


class TestWilsonSampler:
    def test_tree_has_n_minus_one_edges(self):
        g = fe_mesh_2d(6, 6, seed=0)
        rng = ensure_rng(1)
        for _ in range(5):
            tree = sample_spanning_tree(g, rng)
            assert tree.shape[0] == g.num_nodes - 1

    def test_tree_spans_and_is_acyclic(self):
        g = fe_mesh_2d(5, 7, seed=2)
        rng = ensure_rng(3)
        tree = sample_spanning_tree(g, rng)
        sub = Graph(
            g.num_nodes, g.heads[tree], g.tails[tree], g.weights[tree]
        )
        assert is_connected(sub)
        assert sub.num_edges == sub.num_nodes - 1  # acyclic by edge count

    def test_path_graph_tree_is_the_path(self):
        g = path_graph(6)
        rng = ensure_rng(4)
        tree = sample_spanning_tree(g, rng)
        assert np.array_equal(np.sort(tree), np.arange(5))

    def test_weighted_bias(self):
        """On a triangle with one heavy edge, the heavy edge appears in
        almost every sampled tree (Pr = w·R ≈ 1)."""
        g = Graph.from_edges(3, [(0, 1, 100.0), (1, 2, 1.0), (0, 2, 1.0)])
        rng = ensure_rng(5)
        heavy_count = sum(
            0 in sample_spanning_tree(g, rng) for _ in range(100)
        )
        assert heavy_count > 90


class TestEstimator:
    def test_unbiased_on_cycle(self):
        """Cycle: every edge has Pr[e ∈ T] = (n−1)/n exactly."""
        n = 8
        g = cycle_graph(n)
        est = SpanningTreeEffectiveResistance(g, num_trees=600, seed=6)
        expected = (n - 1) / n
        assert np.allclose(est.edge_frequency, expected, atol=0.06)

    def test_matches_exact_on_mesh(self):
        g = fe_mesh_2d(5, 5, seed=7)
        est = SpanningTreeEffectiveResistance(g, num_trees=800, seed=8)
        exact = ExactEffectiveResistance(g.coalesce())
        truth = exact.all_edge_resistances()
        approx = est.all_edge_resistances()
        # Monte-Carlo estimate: generous absolute tolerance
        assert np.abs(approx - truth).mean() < 0.05

    def test_centrality_sums_to_n_minus_one(self):
        g = complete_graph(7)
        est = SpanningTreeEffectiveResistance(g, num_trees=300, seed=9)
        assert np.isclose(
            est.spanning_edge_centrality().sum(), 6.0, atol=1e-9
        )  # every tree contributes exactly n−1 indicators

    def test_edge_query(self):
        g = path_graph(4)
        est = SpanningTreeEffectiveResistance(g, num_trees=10, seed=10)
        assert est.query(1, 2) == 1.0  # tree edges always present

    def test_non_edge_query_rejected(self):
        g = path_graph(4)
        est = SpanningTreeEffectiveResistance(g, num_trees=5, seed=11)
        with pytest.raises(ValueError, match="edge queries"):
            est.query(0, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpanningTreeEffectiveResistance(path_graph(3), num_trees=0)
