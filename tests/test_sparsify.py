"""Tests for Spielman–Srivastava effective-resistance sparsification."""

import numpy as np

from repro.core.effective_resistance import ExactEffectiveResistance
from repro.graphs.components import is_connected
from repro.graphs.generators import complete_graph, fe_mesh_2d
from repro.graphs.laplacian import laplacian
from repro.reduction.sparsify import spielman_srivastava_sparsify


def exact_resistances(graph):
    return ExactEffectiveResistance(graph).all_edge_resistances()


class TestBasics:
    def test_small_graph_returned_unchanged(self):
        g = fe_mesh_2d(4, 4, seed=0)
        r = exact_resistances(g)
        result = spielman_srivastava_sparsify(g, r, num_samples=10**6, seed=1)
        assert result.graph is g
        assert result.num_samples == 0

    def test_reduces_dense_graph(self):
        g = complete_graph(40)
        r = exact_resistances(g)
        result = spielman_srivastava_sparsify(g, r, sample_factor=2.0, seed=2)
        assert result.graph.num_edges < g.num_edges

    def test_stays_connected(self):
        g = complete_graph(30)
        r = exact_resistances(g)
        for seed in range(5):
            result = spielman_srivastava_sparsify(
                g, r, num_samples=40, keep_spanning_tree=True, seed=seed
            )
            assert is_connected(result.graph)

    def test_deterministic_given_seed(self):
        g = complete_graph(25)
        r = exact_resistances(g)
        a = spielman_srivastava_sparsify(g, r, sample_factor=2.0, seed=7)
        b = spielman_srivastava_sparsify(g, r, sample_factor=2.0, seed=7)
        assert a.graph.num_edges == b.graph.num_edges
        assert np.allclose(a.graph.weights, b.graph.weights)


class TestSpectralQuality:
    def test_quadratic_form_preserved(self):
        """xᵀL̃x ≈ xᵀLx for random test vectors (the sparsifier guarantee)."""
        g = complete_graph(60)
        r = exact_resistances(g)
        result = spielman_srivastava_sparsify(g, r, sample_factor=12.0, seed=3)
        lap = laplacian(g).toarray()
        lap_sparse = laplacian(result.graph).toarray()
        rng = np.random.default_rng(4)
        for _ in range(10):
            x = rng.normal(size=60)
            x -= x.mean()
            original = x @ lap @ x
            sparsified = x @ lap_sparse @ x
            assert abs(sparsified / original - 1.0) < 0.35

    def test_total_weight_roughly_preserved(self):
        g = complete_graph(50)
        r = exact_resistances(g)
        result = spielman_srivastava_sparsify(g, r, sample_factor=10.0, seed=5)
        assert np.isclose(
            result.graph.total_weight(), g.total_weight(), rtol=0.3
        )

    def test_effective_resistances_approximately_preserved(self):
        g = complete_graph(40)
        r = exact_resistances(g)
        result = spielman_srivastava_sparsify(g, r, sample_factor=14.0, seed=6)
        before = ExactEffectiveResistance(g).query(0, 1)
        after = ExactEffectiveResistance(result.graph).query(0, 1)
        assert abs(after / before - 1.0) < 0.4
