"""Tests for the IBM-PG SPICE subset reader/writer."""

import numpy as np
import pytest

from repro.powergrid.dc import dc_analysis
from repro.powergrid.generators import synthetic_ibmpg_like
from repro.powergrid.spice import parse_value, read_spice, write_spice
from repro.powergrid.waveforms import PulseWaveform, PWLWaveform


class TestValueParsing:
    def test_plain_numbers(self):
        assert parse_value("1.5") == 1.5
        assert parse_value("-2e-3") == -2e-3

    def test_suffixes(self):
        assert parse_value("1k") == 1e3
        assert np.isclose(parse_value("2.5m"), 2.5e-3, rtol=1e-12)
        assert np.isclose(parse_value("3u"), 3e-6, rtol=1e-12)
        assert np.isclose(parse_value("4n"), 4e-9, rtol=1e-12)
        assert np.isclose(parse_value("5p"), 5e-12, rtol=1e-12)
        assert np.isclose(parse_value("6f"), 6e-15, rtol=1e-12)
        assert parse_value("1meg") == 1e6

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_value("abc")


class TestReader:
    def test_basic_netlist(self, tmp_path):
        path = tmp_path / "net.sp"
        path.write_text(
            "* tiny grid\n"
            "R1 n0 n1 0.5\n"
            "R2 n1 0 2\n"
            "C1 n1 0 1p\n"
            "V1 n0 0 1.8\n"
            "I1 n1 0 10m\n"
            ".op\n.end\n"
        )
        grid = read_spice(path)
        assert grid.num_nodes == 2
        assert grid.num_resistors == 1
        assert len(grid.shunt_node) == 1
        assert len(grid.cap_a) == 1
        assert grid.vsources[0].voltage == 1.8
        assert np.isclose(grid.isources[0].dc, 0.01)

    def test_pulse_source(self, tmp_path):
        path = tmp_path / "pulse.sp"
        path.write_text(
            "V1 p 0 1.0\n"
            "R1 p a 1\n"
            "I1 a 0 PULSE(0 1m 0 1p 1n 1p 2n)\n"
            ".end\n"
        )
        grid = read_spice(path)
        wf = grid.isources[0].waveform
        assert isinstance(wf, PulseWaveform)
        assert wf.high == 1e-3
        assert wf.period == 2e-9

    def test_pwl_source(self, tmp_path):
        path = tmp_path / "pwl.sp"
        path.write_text("V1 p 0 1\nR1 p a 1\nI1 a 0 PWL(0 0 1n 5m)\n.end\n")
        grid = read_spice(path)
        wf = grid.isources[0].waveform
        assert isinstance(wf, PWLWaveform)
        assert np.isclose(wf.value(0.5e-9), 2.5e-3)

    def test_rejects_unknown_card(self, tmp_path):
        path = tmp_path / "bad.sp"
        path.write_text("Q1 a b c 1\n")
        with pytest.raises(ValueError, match="unsupported"):
            read_spice(path)


class TestRoundTrip:
    def test_synthetic_grid_round_trip(self, tmp_path):
        grid = synthetic_ibmpg_like(nx=6, ny=6, transient=True, seed=4)
        path = tmp_path / "grid.sp"
        write_spice(grid, path)
        back = read_spice(path)
        assert back.num_nodes == grid.num_nodes
        assert back.num_resistors == grid.num_resistors
        assert len(back.cap_a) == len(grid.cap_a)
        assert len(back.vsources) == len(grid.vsources)
        assert len(back.isources) == len(grid.isources)
        # electrical equivalence: identical DC solutions
        original = dc_analysis(grid)
        reloaded = dc_analysis(back)
        # node order may differ; compare by name
        for name in grid.node_names:
            assert np.isclose(
                original.voltage_of(name), reloaded.voltage_of(name), atol=1e-12
            )

    def test_waveforms_survive_round_trip(self, tmp_path):
        grid = synthetic_ibmpg_like(nx=5, ny=5, transient=True, seed=5)
        path = tmp_path / "grid.sp"
        write_spice(grid, path)
        back = read_spice(path)
        t = np.linspace(0, 4e-9, 13)
        for original, reloaded in zip(grid.isources, back.isources):
            assert np.allclose(original.current_at(t), reloaded.current_at(t))
