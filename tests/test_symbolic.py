"""Tests for the symbolic factorisation pattern."""

import numpy as np
import scipy.sparse as sp

from repro.cholesky.symbolic import symbolic_factorization
from repro.graphs.generators import fe_mesh_2d
from repro.graphs.laplacian import grounded_laplacian
from tests.conftest import random_spd
from tests.test_etree import boolean_fill


def pattern_to_dense(sym, n):
    dense = np.zeros((n, n), dtype=bool)
    for j in range(n):
        rows = sym.indices[sym.indptr[j] : sym.indptr[j + 1]]
        dense[rows, j] = True
    return dense


def test_pattern_matches_brute_force_spd():
    matrix = random_spd(40, 0.1, seed=5)
    sym = symbolic_factorization(matrix)
    assert np.array_equal(pattern_to_dense(sym, 40), boolean_fill(matrix))


def test_pattern_matches_brute_force_mesh():
    graph = fe_mesh_2d(6, 5, seed=4)
    matrix, _ = grounded_laplacian(graph, 1.0)
    n = matrix.shape[0]
    sym = symbolic_factorization(matrix)
    assert np.array_equal(pattern_to_dense(sym, n), boolean_fill(matrix))


def test_diagonal_stored_first():
    matrix = random_spd(25, 0.15, seed=1)
    sym = symbolic_factorization(matrix)
    firsts = sym.indices[sym.indptr[:-1]]
    assert np.array_equal(firsts, np.arange(25))


def test_rows_sorted_within_columns():
    matrix = random_spd(30, 0.1, seed=2)
    sym = symbolic_factorization(matrix)
    for j in range(30):
        rows = sym.indices[sym.indptr[j] : sym.indptr[j + 1]]
        assert np.all(np.diff(rows) > 0)


def test_nnz_property():
    matrix = random_spd(20, 0.2, seed=7)
    sym = symbolic_factorization(matrix)
    assert sym.nnz == sym.indices.shape[0] == sym.indptr[-1]


def test_tridiagonal_no_fill():
    diag = np.full(6, 2.0)
    off = np.full(5, -1.0)
    matrix = sp.diags([off, diag, off], [-1, 0, 1]).tocsc()
    sym = symbolic_factorization(matrix)
    assert sym.nnz == 6 + 5  # bidiagonal lower factor: no fill-in
