"""Tests for Table II harness rendering and configuration plumbing."""

import numpy as np

from repro.bench.fig1 import Fig1Result
from repro.bench.table2 import Table2Row, _method_config, render_table2


def make_row(method: str, tred: float) -> Table2Row:
    return Table2Row(
        case="pgX",
        method=method,
        original_nodes=1000,
        original_edges=2000,
        time_original_analysis=1.0,
        reduced_nodes=300,
        reduced_edges=900,
        time_reduction=tred,
        time_reduced_analysis=0.2,
        err_mv=0.1,
        rel_pct=1.0,
    )


def test_render_includes_speedup_vs_exact():
    rows = [make_row("exact", 2.0), make_row("cholinv", 0.5)]
    rendered = render_table2(rows, "tr")
    assert "Acc. Eff. Res." in rendered
    assert "Alg. 3" in rendered
    assert "4.000" in rendered  # 2.0 / 0.5 speedup cell


def test_total_time_property():
    row = make_row("exact", 2.0)
    assert row.total_time == 2.2


def test_method_config_variants():
    exact = _method_config("exact", seed=1)
    assert exact.er_method == "exact"
    assert exact.er_kwargs == {}
    rp = _method_config("random_projection", seed=1)
    assert rp.er_kwargs.get("c_jl") == 25.0
    alg3 = _method_config("cholinv", seed=1)
    assert alg3.seed == 1


def test_fig1_csv_round_trip(tmp_path):
    times = np.linspace(0, 1e-9, 20)
    result = Fig1Result(
        times=times,
        vdd_node_name="nv",
        gnd_node_name="ng",
        vdd_original=1.8 - 0.01 * np.sin(times * 1e10),
        vdd_reduced=1.8 - 0.01 * np.sin(times * 1e10),
        gnd_original=0.01 * np.cos(times * 1e10),
        gnd_reduced=0.01 * np.cos(times * 1e10) + 1e-5,
    )
    path = tmp_path / "wave.csv"
    result.to_csv(path)
    data = np.loadtxt(path, delimiter=",", skiprows=1)
    assert data.shape == (20, 5)
    assert np.allclose(data[:, 0], times)
    assert np.isclose(result.max_divergence(), 1e-5)
