"""Tests for Backward-Euler transient analysis against RC theory."""

import numpy as np
import pytest

from repro.powergrid.generators import synthetic_ibmpg_like
from repro.powergrid.netlist import GROUND, PowerGrid
from repro.powergrid.transient import transient_analysis
from repro.powergrid.waveforms import PWLWaveform


def rc_circuit(r=1.0, c=1e-9):
    """pad —R— node —C— ground, with a step current load at the node."""
    pg = PowerGrid()
    pad, node = pg.node("pad"), pg.node("n")
    pg.add_resistor(pad, node, r)
    pg.add_capacitor(node, c)
    pg.add_vsource(pad, 1.0)
    return pg, node


class TestRCStep:
    def test_exponential_settling(self):
        """Step load on an RC node settles as 1 − e^{−t/RC} towards IR drop."""
        r, c, i_load = 1.0, 1e-9, 0.2
        pg, node = rc_circuit(r, c)
        pg.add_isource(
            node,
            0.0,
            waveform=PWLWaveform(times=[0.0, 1e-15], values=[0.0, i_load]),
        )
        tau = r * c
        h = tau / 100
        result = transient_analysis(pg, step=h, num_steps=500, observe=np.array([node]))
        wave = result.voltages[0]
        expected = 1.0 - i_load * r * (1.0 - np.exp(-result.times / tau))
        # Backward Euler at h = tau/100: first-order accurate
        assert np.max(np.abs(wave - expected)) < 2e-3

    def test_starts_from_dc_operating_point(self):
        pg, node = rc_circuit()
        pg.add_isource(node, 0.1)  # constant load, no waveform
        result = transient_analysis(pg, step=1e-10, num_steps=20, observe=np.array([node]))
        # constant source: the waveform must stay at the DC solution
        assert np.allclose(result.voltages[0], 0.9, atol=1e-9)

    def test_smaller_step_more_accurate(self):
        r, c, i_load = 1.0, 1e-9, 0.2
        errors = []
        for steps_per_tau in (10, 100):
            pg, node = rc_circuit(r, c)
            pg.add_isource(
                node, 0.0, waveform=PWLWaveform(times=[0.0, 1e-15], values=[0.0, i_load])
            )
            tau = r * c
            h = tau / steps_per_tau
            num = 3 * steps_per_tau
            result = transient_analysis(pg, step=h, num_steps=num, observe=np.array([node]))
            expected = 1.0 - i_load * r * (1.0 - np.exp(-result.times / tau))
            errors.append(np.max(np.abs(result.voltages[0] - expected)))
        assert errors[1] < errors[0]


class TestInterface:
    def test_observe_subset(self):
        grid = synthetic_ibmpg_like(nx=6, ny=6, transient=True, seed=0)
        ports = grid.port_nodes()
        result = transient_analysis(grid, step=1e-11, num_steps=5, observe=ports)
        assert result.voltages.shape == (ports.size, 5)
        assert np.array_equal(result.observed, ports)

    def test_waveform_of(self):
        grid = synthetic_ibmpg_like(nx=6, ny=6, transient=True, seed=0)
        ports = grid.port_nodes()
        result = transient_analysis(grid, step=1e-11, num_steps=5, observe=ports)
        wave = result.waveform_of(int(ports[2]))
        assert np.array_equal(wave, result.voltages[2])
        with pytest.raises(ValueError):
            result.waveform_of(int(ports.max()) + 10**6)

    def test_validation(self):
        grid = synthetic_ibmpg_like(nx=4, ny=4, seed=0)
        with pytest.raises(ValueError):
            transient_analysis(grid, step=0.0)
        with pytest.raises(ValueError):
            transient_analysis(grid, step=1e-12, num_steps=0)

    def test_voltages_bounded_by_supply(self):
        """A passive RC grid cannot exceed the rails (much)."""
        grid = synthetic_ibmpg_like(nx=10, ny=10, transient=True, seed=3)
        result = transient_analysis(grid, step=1e-11, num_steps=50)
        assert result.voltages.max() <= 1.8 + 1e-6
        assert result.voltages.min() >= -0.5
