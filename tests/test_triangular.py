"""Tests for sparse triangular solves."""

import numpy as np
import scipy.sparse as sp

from repro.cholesky.numeric import cholesky
from repro.cholesky.triangular import (
    solve_lower,
    solve_lower_transpose,
    spd_solve,
    unit_vector,
)


def test_solve_lower(spd_matrix):
    factor = cholesky(spd_matrix, ordering="natural")
    rng = np.random.default_rng(0)
    b = rng.normal(size=spd_matrix.shape[0])
    y = solve_lower(factor.lower, b)
    assert np.allclose(factor.lower @ y, b, atol=1e-9)


def test_solve_lower_transpose(spd_matrix):
    factor = cholesky(spd_matrix, ordering="natural")
    rng = np.random.default_rng(1)
    b = rng.normal(size=spd_matrix.shape[0])
    z = solve_lower_transpose(factor.lower, b)
    assert np.allclose(factor.lower.T @ z, b, atol=1e-9)


def test_spd_solve(spd_matrix):
    factor = cholesky(spd_matrix, ordering="natural")
    rng = np.random.default_rng(2)
    b = rng.normal(size=spd_matrix.shape[0])
    x = spd_solve(factor.lower, b)
    assert np.allclose(spd_matrix @ x, b, atol=1e-8)


def test_solve_2d_rhs(spd_matrix):
    factor = cholesky(spd_matrix, ordering="natural")
    rng = np.random.default_rng(3)
    b = rng.normal(size=(spd_matrix.shape[0], 3))
    y = solve_lower(factor.lower, b)
    assert np.allclose(factor.lower @ y, b, atol=1e-9)


def test_unit_vector():
    e = unit_vector(5, 2)
    assert e.shape == (5,)
    assert e[2] == 1.0
    assert e.sum() == 1.0
