"""Tests for the Eq. (10) relative 1-norm truncation rule."""

import numpy as np
import pytest

from repro.core.truncation import (
    dropped_fraction,
    truncate_relative_1norm,
    truncation_keep_mask,
)


class TestKeepMask:
    def test_eps_zero_keeps_everything_nonzero(self):
        values = np.array([0.5, -0.1, 0.0, 2.0])
        mask = truncation_keep_mask(values, 0.0)
        assert np.array_equal(mask, [True, True, False, True])

    def test_eps_one_drops_everything(self):
        values = np.array([1.0, 2.0, 3.0])
        mask = truncation_keep_mask(values, 1.0)
        assert not mask.any()

    def test_dropped_mass_within_budget(self):
        rng = np.random.default_rng(0)
        for eps in (1e-3, 1e-2, 0.1, 0.5):
            values = rng.exponential(size=200)
            mask = truncation_keep_mask(values, eps)
            assert dropped_fraction(values, mask) <= eps + 1e-12

    def test_maximality(self):
        """k is the LARGEST admissible count: dropping the next smallest
        kept entry must exceed the budget."""
        rng = np.random.default_rng(1)
        values = rng.exponential(size=100)
        eps = 0.05
        mask = truncation_keep_mask(values, eps)
        if mask.any():
            total = np.abs(values).sum()
            dropped = np.abs(values[~mask]).sum()
            smallest_kept = np.abs(values[mask]).min()
            assert dropped + smallest_kept > eps * total

    def test_negative_eps_raises(self):
        with pytest.raises(ValueError):
            truncation_keep_mask(np.array([1.0]), -0.1)

    def test_all_zero_column(self):
        mask = truncation_keep_mask(np.zeros(4), 0.1)
        assert not mask.any()

    def test_uses_absolute_values(self):
        values = np.array([-10.0, 0.001, -0.001])
        mask = truncation_keep_mask(values, 0.01)
        assert mask[0]
        assert not mask[1] and not mask[2]


class TestTruncateColumn:
    def test_returns_consistent_pair(self):
        indices = np.array([3, 7, 9, 12])
        values = np.array([5.0, 0.01, 4.0, 0.02])
        idx, vals = truncate_relative_1norm(indices, values, 0.02)
        assert np.array_equal(idx, [3, 9])
        assert np.allclose(vals, [5.0, 4.0])

    def test_preserves_order(self):
        indices = np.arange(10)
        values = np.linspace(1, 10, 10)
        idx, vals = truncate_relative_1norm(indices, values, 0.05)
        assert np.all(np.diff(idx) > 0)
