"""Tests for shared utilities (timing, rng, validation, sparse helpers)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg.sparse_utils import column_slices, drop_small, nnz_per_column
from repro.utils.rng import ensure_rng, spawn
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    check_positive,
    check_square_sparse,
    check_symmetric,
    require,
)


class TestTimer:
    def test_sections_accumulate(self):
        timer = Timer()
        with timer.section("a"):
            pass
        with timer.section("a"):
            pass
        with timer.section("b"):
            pass
        assert set(timer.times) == {"a", "b"}
        assert timer.total == pytest.approx(timer["a"] + timer["b"])

    def test_report_contains_names(self):
        timer = Timer()
        with timer.section("stage"):
            pass
        assert "stage" in timer.report()
        assert "total" in timer.report()

    def test_empty_report(self):
        assert "no timings" in Timer().report()

    def test_timed_context(self):
        with timed() as elapsed:
            x = sum(range(100))
        assert elapsed() >= 0.0
        assert x == 4950


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_spawn_independent(self):
        children = spawn(ensure_rng(1), 3)
        assert len(children) == 3
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_check_positive(self):
        check_positive(1.0, "x")
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_check_square_sparse(self):
        check_square_sparse(sp.identity(3))
        with pytest.raises(TypeError):
            check_square_sparse(np.eye(3))
        with pytest.raises(ValueError):
            check_square_sparse(sp.csr_matrix((2, 3)))

    def test_check_symmetric(self):
        check_symmetric(sp.identity(4))
        lop = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        with pytest.raises(ValueError):
            check_symmetric(lop)


class TestSparseUtils:
    def test_nnz_per_column(self):
        matrix = sp.csc_matrix(np.array([[1.0, 0.0], [1.0, 2.0]]))
        assert np.array_equal(nnz_per_column(matrix), [2, 1])

    def test_column_slices(self):
        matrix = sp.csc_matrix(np.array([[1.0, 0.0], [3.0, 2.0]]))
        rows, vals = column_slices(matrix, 0)
        assert np.array_equal(rows, [0, 1])
        assert np.allclose(vals, [1.0, 3.0])

    def test_drop_small(self):
        matrix = sp.csc_matrix(np.array([[1.0, 1e-8], [0.0, 2.0]]))
        cleaned = drop_small(matrix, 1e-6)
        assert cleaned.nnz == 2
