"""Tests for netlist validation, reduction quality and multi-layer grids."""

import numpy as np
import pytest

from repro.powergrid.dc import dc_analysis
from repro.powergrid.generators import PGConfig, synthetic_ibmpg_like
from repro.powergrid.netlist import GROUND, PowerGrid
from repro.powergrid.validation import validate_power_grid
from repro.reduction.pipeline import PGReducer, ReductionConfig
from repro.reduction.quality import assess_reduction_quality


class TestValidation:
    def test_clean_grid_passes(self):
        grid = synthetic_ibmpg_like(nx=8, ny=8, seed=0)
        report = validate_power_grid(grid)
        assert report.ok
        assert report.num_components == 2  # vdd + gnd nets
        assert "OK" in report.summary()

    def test_detects_floating_island(self):
        grid = synthetic_ibmpg_like(nx=6, ny=6, seed=1)
        a, b = grid.node("float_a"), grid.node("float_b")
        grid.add_resistor(a, b, 1.0)
        report = validate_power_grid(grid)
        assert not report.ok
        assert a in report.floating_nodes
        assert b in report.floating_nodes
        assert "without a DC path" in report.summary()

    def test_detects_floating_load(self):
        pg = PowerGrid()
        pad, mid = pg.node("pad"), pg.node("mid")
        pg.add_resistor(pad, mid, 1.0)
        pg.add_vsource(pad, 1.0)
        lone = pg.node("lone")
        other = pg.node("other")
        pg.add_resistor(lone, other, 1.0)
        pg.add_isource(lone, 0.1)
        report = validate_power_grid(pg)
        assert lone in report.floating_loads

    def test_shunt_counts_as_anchor(self):
        pg = PowerGrid()
        a, b = pg.node("a"), pg.node("b")
        pg.add_resistor(a, b, 1.0)
        pg.add_resistor(a, GROUND, 10.0)  # DC return through the shunt
        pg.add_vsource(pg.node("pad"), 1.0)
        report = validate_power_grid(pg)
        assert a not in report.floating_nodes
        assert b not in report.floating_nodes

    def test_detects_conflicting_pads(self):
        pg = PowerGrid()
        node = pg.node("pad")
        pg.node("other")
        pg.add_resistor(0, 1, 1.0)
        pg.add_vsource(node, 1.8)
        pg.add_vsource(node, 1.2)
        report = validate_power_grid(pg)
        assert node in report.conflicting_pads
        assert not report.ok

    def test_resistance_ratio(self):
        pg = PowerGrid()
        a, b, c = pg.node("a"), pg.node("b"), pg.node("c")
        pg.add_resistor(a, b, 1e-3)
        pg.add_resistor(b, c, 1e3)
        pg.add_vsource(a, 1.0)
        report = validate_power_grid(pg)
        assert np.isclose(report.extreme_resistance_ratio, 1e6)


class TestQualityReport:
    @pytest.fixture(scope="class")
    def reduced_case(self):
        grid = synthetic_ibmpg_like(nx=14, ny=14, pad_pitch=6, seed=2)
        reducer = PGReducer(grid, ReductionConfig(er_method="cholinv", seed=1))
        return grid, reducer.reduce()

    def test_quality_across_corners(self, reduced_case):
        grid, reduced = reduced_case
        report = assess_reduction_quality(grid, reduced, num_corners=4, seed=3)
        assert report.corner_rel_errors.shape == (4,)
        assert report.worst_rel_error < 0.10
        assert report.mean_rel_error <= report.worst_rel_error
        assert "corners" in report.summary()

    def test_corner_errors_consistent(self, reduced_case):
        grid, reduced = reduced_case
        report = assess_reduction_quality(grid, reduced, num_corners=3, seed=4)
        assert np.all(report.corner_mean_errors <= report.corner_max_errors + 1e-15)


class TestMultiLayer:
    def test_two_layer_structure(self):
        config = PGConfig(nx=12, ny=12, nets=("vdd",), num_layers=2, strap_pitch=4)
        grid = synthetic_ibmpg_like(config, seed=5)
        m2_nodes = [n for n in grid.node_names if "_m2_" in n]
        assert len(m2_nodes) == 3 * 3  # straps every 4 on a 12-mesh
        # pads sit on the top metal
        for vs in grid.vsources:
            assert "_m2_" in grid.name_of(vs.node)

    def test_two_layer_grid_is_connected_and_solvable(self):
        config = PGConfig(nx=10, ny=10, num_layers=2, strap_pitch=5)
        grid = synthetic_ibmpg_like(config, seed=6)
        report = validate_power_grid(grid)
        assert report.ok
        result = dc_analysis(grid)
        assert np.all(np.isfinite(result.voltages))
        assert result.max_drop() > 0

    def test_two_layer_reduces_ir_drop(self):
        """Low-resistance top straps must lower the worst IR drop."""
        single = synthetic_ibmpg_like(
            PGConfig(nx=16, ny=16, nets=("vdd",), num_layers=1), seed=7
        )
        double = synthetic_ibmpg_like(
            PGConfig(nx=16, ny=16, nets=("vdd",), num_layers=2, strap_pitch=4), seed=7
        )
        drop_single = dc_analysis(single).max_drop()
        drop_double = dc_analysis(double).max_drop()
        assert drop_double < drop_single

    def test_two_layer_reduction_works(self):
        config = PGConfig(nx=12, ny=12, num_layers=2, strap_pitch=4, pad_pitch=6)
        grid = synthetic_ibmpg_like(config, seed=8)
        original = dc_analysis(grid)
        reducer = PGReducer(grid, ReductionConfig(er_method="cholinv", seed=0))
        reduced = reducer.reduce()
        solution = dc_analysis(reduced.grid)
        errors = reduced.port_voltage_errors(
            original.voltages, solution.voltages, grid.port_nodes()
        )
        assert errors.mean() / original.max_drop() < 0.08
