"""Tests for source waveforms."""

import numpy as np
import pytest

from repro.powergrid.waveforms import ConstantWaveform, PulseWaveform, PWLWaveform


class TestPWL:
    def test_interpolation(self):
        wf = PWLWaveform(times=[0.0, 1.0, 2.0], values=[0.0, 2.0, 0.0])
        assert wf.value(0.5) == 1.0
        assert wf.value(1.5) == 1.0
        assert wf.value(1.0) == 2.0

    def test_clamping_outside_range(self):
        wf = PWLWaveform(times=[1.0, 2.0], values=[3.0, 5.0])
        assert wf.value(0.0) == 3.0
        assert wf.value(10.0) == 5.0

    def test_vectorized(self):
        wf = PWLWaveform(times=[0.0, 1.0], values=[0.0, 1.0])
        out = wf.value(np.array([0.0, 0.25, 0.5, 1.0]))
        assert np.allclose(out, [0.0, 0.25, 0.5, 1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            PWLWaveform(times=[1.0, 0.5], values=[0.0, 1.0])
        with pytest.raises(ValueError):
            PWLWaveform(times=[0.0, 1.0], values=[0.0])


class TestPulse:
    def make(self):
        return PulseWaveform(
            low=0.0, high=1.0, delay=1.0, rise=0.1, width=0.5, fall=0.1, period=2.0
        )

    def test_before_delay_is_low(self):
        assert self.make().value(0.5) == 0.0

    def test_plateau(self):
        wf = self.make()
        assert wf.value(1.0 + 0.1 + 0.25) == 1.0

    def test_rise_midpoint(self):
        wf = self.make()
        assert np.isclose(wf.value(1.05), 0.5)

    def test_fall_midpoint(self):
        wf = self.make()
        assert np.isclose(wf.value(1.0 + 0.1 + 0.5 + 0.05), 0.5)

    def test_periodicity(self):
        wf = self.make()
        t = np.linspace(1.0, 3.0, 7)
        assert np.allclose(wf.value(t), wf.value(t + 2.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            PulseWaveform(low=0, high=1, rise=0.5, width=1.0, fall=0.5, period=1.0)


def test_constant_waveform():
    wf = ConstantWaveform(3.0)
    assert np.allclose(wf.value(np.array([0.0, 1e9])), 3.0)
    assert wf(5.0) == 3.0
